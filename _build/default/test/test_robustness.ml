(* Robustness tests: graceful failure modes, tight budgets, hostile
   inputs. *)

open Testgen

(* ------------------------------------------------------ parser resilience *)

let prop_parser_never_raises =
  QCheck.Test.make ~name:"parser returns Ok/Error on arbitrary input, never raises"
    ~count:300
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk ->
      match Circuit.Spice_parser.parse junk with
      | Ok _ | Error _ -> true)

let prop_parser_structured_junk =
  QCheck.Test.make
    ~name:"parser survives structured junk cards" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 1)) in
      let pick l = List.nth l (Numerics.Rng.int rng ~bound:(List.length l)) in
      let card () =
        String.concat " "
          (List.init
             (1 + Numerics.Rng.int rng ~bound:5)
             (fun _ ->
               pick [ "Rx"; "a"; "0"; "10k"; "sine(1,"; ")"; "W=";
                      "=1"; "M1"; ".model"; "+"; "nan"; "-"; "1e999" ]))
      in
      let deck =
        "title\n" ^ String.concat "\n" (List.init 6 (fun _ -> card ()))
      in
      match Circuit.Spice_parser.parse deck with
      | Ok _ | Error _ -> true)

(* --------------------------------------------------------- AC error paths *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let test_ac_nonpositive_frequency () =
  let config =
    Test_config.create ~id:90 ~name:"bad-ac" ~macro_type:"IV-converter"
      ~control_node:"Iin"
      ~params:
        [ Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:1. ~seed:0.5 ]
      ~analysis:
        (Test_config.Ac_gain
           { bias = (fun _ -> Circuit.Waveform.Dc 0.); freq = (fun _ -> 0.) })
      ~returns:Test_config.Per_component
      ~return_names:[ "g"; "p" ]
      ~accuracy_floor:[ 0.1; 1. ]
      ~summary:""
  in
  (try
     ignore (Execute.observables config iv_target [| 0.5 |]);
     Alcotest.fail "zero frequency accepted"
   with Execute.Execution_failure _ -> ())

let test_imd_nyquist_guard () =
  (* products above Nyquist for the chosen profile must fail loudly *)
  let config =
    Test_config.create ~id:91 ~name:"bad-imd" ~macro_type:"IV-converter"
      ~control_node:"Iin"
      ~params:
        [ Test_param.create ~name:"f0" ~units:"Hz" ~lower:1e3 ~upper:1e4 ~seed:2e3 ]
      ~analysis:
        (Test_config.Tran_imd
           {
             stimulus =
               (fun v ->
                 Circuit.Waveform.Multi_sine
                   { offset = 0.; tones = [ (1e-6, 40. *. v.(0)); (1e-6, 41. *. v.(0)) ] });
             base_freq = (fun v -> v.(0));
             k1 = 40;
             k2 = 41;
           })
      ~returns:Test_config.Per_component
      ~return_names:[ "imd" ]
      ~accuracy_floor:[ 0.05 ]
      ~summary:""
  in
  (* fast profile: 64 samples per base period -> Nyquist bin 32 < 42 *)
  (try
     ignore
       (Execute.observables ~profile:Execute.fast_profile config iv_target
          [| 2e3 |]);
     Alcotest.fail "above-Nyquist products accepted"
   with Execute.Execution_failure _ -> ())

(* ----------------------------------------------------- generation budgets *)

let dc_evaluator =
  lazy
    (let config = Experiments.Iv_configs.config1 in
     Evaluator.create config ~nominal:iv_target
       ~box_model:(Tolerance.floor_only config))

let test_generate_tiny_budget () =
  (* an exhausted impact budget must still return a well-formed outcome *)
  let options =
    { Generate.default_options with Generate.max_impact_steps = 2 }
  in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:n1-vout";
      fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
    }
  in
  let r =
    Generate.generate ~options ~evaluators:[ Lazy.force dc_evaluator ] entry
  in
  (match r.Generate.outcome with
  | Generate.Unique { critical_impact; _ } ->
      Alcotest.(check bool) "impact positive" true (critical_impact > 0.)
  | Generate.Undetectable _ -> ());
  Alcotest.(check bool) "trace bounded" true
    (List.length r.Generate.trace <= 8)

let test_generate_narrow_span () =
  (* an impact span of ~1 pins the search at the dictionary value *)
  let options = { Generate.default_options with Generate.impact_span = 1.01 } in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:0-vdd";
      fault = Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
    }
  in
  let r =
    Generate.generate ~options ~evaluators:[ Lazy.force dc_evaluator ] entry
  in
  match r.Generate.outcome with
  | Generate.Undetectable { strongest_impact; _ } ->
      Alcotest.(check bool) "stayed near the dictionary impact" true
        (strongest_impact > 10e3 /. 2.)
  | Generate.Unique _ -> Alcotest.fail "supply bridge cannot be seen at ~10k"

(* -------------------------------------------------------- noise edge cases *)

let test_noise_unknown_node () =
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  (try
     ignore
       (Circuit.Noise.output_noise sys ~op ~observe:"nonexistent"
          ~freqs:[| 1e3 |]);
     Alcotest.fail "unknown node accepted"
   with Not_found -> ())

let test_noise_iv_converter_scale () =
  (* sanity scale: a transimpedance amp with 20k/50k/100k resistors sits in
     the tens of nV/rtHz at the output in the flat band *)
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  match Circuit.Noise.output_noise sys ~op ~observe:"vout" ~freqs:[| 1e3 |] with
  | [ p ] ->
      let nv = 1e9 *. sqrt p.Circuit.Noise.total_psd in
      Alcotest.(check bool)
        (Printf.sprintf "%.1f nV/rtHz plausible" nv)
        true
        (nv > 5. && nv < 500.)
  | _ -> Alcotest.fail "one point"

(* -------------------------------------------------- session hostile input *)

let prop_session_never_raises =
  QCheck.Test.make
    ~name:"session parser returns Ok/Error on arbitrary input" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 300))
    (fun junk ->
      match Session.of_string ("atpg-session 1\n" ^ junk) with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "robustness"
    [
      ( "parser",
        [
          QCheck_alcotest.to_alcotest prop_parser_never_raises;
          QCheck_alcotest.to_alcotest prop_parser_structured_junk;
        ] );
      ( "execute",
        [
          Alcotest.test_case "ac zero frequency" `Quick test_ac_nonpositive_frequency;
          Alcotest.test_case "imd nyquist guard" `Quick test_imd_nyquist_guard;
        ] );
      ( "generate",
        [
          Alcotest.test_case "tiny impact budget" `Quick test_generate_tiny_budget;
          Alcotest.test_case "narrow impact span" `Quick test_generate_narrow_span;
        ] );
      ( "noise",
        [
          Alcotest.test_case "unknown node" `Quick test_noise_unknown_node;
          Alcotest.test_case "output scale" `Quick test_noise_iv_converter_scale;
        ] );
      ( "session",
        [ QCheck_alcotest.to_alcotest prop_session_never_raises ] );
    ]
