(* Tests for the extension features: IFA weighting, scheduling, fault
   equivalence, Monte-Carlo box calibration, the AC configuration kind
   and the Sallen-Key macro. *)

open Testgen

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* -------------------------------------------------------------------- IFA *)

let iv_netlist = Macros.Macro.nominal_netlist Macros.Iv_converter.macro

let test_ifa_shared_devices () =
  (* iin and vout share the feedback resistor rf *)
  Alcotest.(check bool) "iin-vout share rf" true
    (Faults.Ifa.shared_device_count iv_netlist "iin" "vout" >= 1);
  (* bias node and the input node share nothing *)
  Alcotest.(check int) "iin-nbias share none" 0
    (Faults.Ifa.shared_device_count iv_netlist "iin" "nbias")

let test_ifa_bridge_weights () =
  let adjacent = Faults.Ifa.bridge_weight iv_netlist "iin" "vout" in
  let distant = Faults.Ifa.bridge_weight iv_netlist "iin" "nbias" in
  Alcotest.(check bool) "adjacent nodes likelier" true (adjacent > distant);
  check_float "background weight" 1. distant

let test_ifa_pinhole_weights () =
  (* m6 (100u x 1u) has a larger gate than m5 (20u x 2u = 40 um^2) *)
  let w6 = Faults.Ifa.pinhole_weight iv_netlist "m6" in
  let w5 = Faults.Ifa.pinhole_weight iv_netlist "m5" in
  check_float "m6 area" 100. w6;
  check_float "m5 area" 40. w5;
  (try
     ignore (Faults.Ifa.pinhole_weight iv_netlist "rf");
     Alcotest.fail "non-mosfet accepted"
   with Invalid_argument _ -> ())

let test_ifa_weigh_normalizes () =
  let dict = Macros.Macro.dictionary Macros.Iv_converter.macro in
  let weighted = Faults.Ifa.weigh iv_netlist dict in
  Alcotest.(check int) "all entries" 55 (List.length weighted);
  let total =
    List.fold_left (fun acc w -> acc +. w.Faults.Ifa.weight) 0. weighted
  in
  check_float ~eps:1e-9 "weights sum to 1" 1. total;
  List.iter
    (fun w -> Alcotest.(check bool) "positive" true (w.Faults.Ifa.weight > 0.))
    weighted

let test_ifa_weighted_coverage () =
  let dict =
    Faults.Dictionary.of_faults
      [
        Faults.Fault.bridge "iin" "vout" ~resistance:10e3;
        Faults.Fault.bridge "iin" "nbias" ~resistance:10e3;
      ]
  in
  let weighted = Faults.Ifa.weigh iv_netlist dict in
  (* detecting only the heavier (adjacent) fault yields > 50 % weighted *)
  let cov =
    Faults.Ifa.weighted_coverage weighted ~detected:(fun fid ->
        String.equal fid "bridge:iin-vout")
  in
  Alcotest.(check bool) (Printf.sprintf "weighted cov %.1f > 50" cov) true
    (cov > 50.);
  check_float "all detected" 100.
    (Faults.Ifa.weighted_coverage weighted ~detected:(fun _ -> true));
  check_float "none detected" 0.
    (Faults.Ifa.weighted_coverage weighted ~detected:(fun _ -> false))

let test_ifa_sort () =
  let dict = Macros.Macro.dictionary Macros.Iv_converter.macro in
  let sorted = Faults.Ifa.sort_by_weight (Faults.Ifa.weigh iv_netlist dict) in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        a.Faults.Ifa.weight >= b.Faults.Ifa.weight && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted heaviest first" true (non_increasing sorted)

(* --------------------------------------------------------------- Schedule *)

let sched_configs = Experiments.Iv_configs.all

let test_test_cost () =
  let model = Schedule.default_cost_model in
  let cost id = Schedule.test_cost model (Experiments.Iv_configs.by_id id) in
  (* config 2 measures two DC points, config 1 one *)
  check_float "dc pair costs double" (2. *. model.Schedule.dc_point_cost) (cost 2);
  check_float "dc single" model.Schedule.dc_point_cost (cost 1);
  check_float "thd flat cost" model.Schedule.thd_cost (cost 3);
  (* step configs: 750 samples at 100 MHz *)
  check_float "step cost" (750. *. 1e-8 *. 1e6 *. 1e-6) (cost 4)

let mk_test label cid = { Coverage.test_label = label; test_config_id = cid;
                          test_params = [| 0. |] }

let test_schedule_greedy_order () =
  (* t_cheap covers the heavy fault cheaply; t_dear covers a light fault *)
  let tests = [ mk_test "t_dear" 3; mk_test "t_cheap" 1 ] in
  let weights = [ ("f_heavy", 0.9); ("f_light", 0.1) ] in
  let detections = [ ("f_heavy", [ "t_cheap" ]); ("f_light", [ "t_dear" ]) ] in
  let s =
    Schedule.order ~cost_model:Schedule.default_cost_model
      ~configs:sched_configs ~weights ~detections tests
  in
  (match s.Schedule.order with
  | first :: _ ->
      Alcotest.(check string) "cheap high-yield test first" "t_cheap"
        first.Coverage.test_label
  | [] -> Alcotest.fail "empty schedule");
  (* coverage is monotone and ends at 100 % of the detectable weight *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone coverage" true
    (monotone s.Schedule.cumulative_coverage);
  check_float ~eps:1e-6 "full weighted coverage" 100.
    (List.fold_left Float.max 0. s.Schedule.cumulative_coverage)

let test_schedule_expected_cost () =
  let tests = [ mk_test "t1" 1; mk_test "t2" 1 ] in
  let weights = [ ("fa", 0.5); ("fb", 0.5) ] in
  let detections = [ ("fa", [ "t1" ]); ("fb", [ "t2" ]) ] in
  let s =
    Schedule.order ~cost_model:Schedule.default_cost_model
      ~configs:sched_configs ~weights ~detections tests
  in
  (* both tests cost 1 ms: E[cost] = 0.5*1ms + 0.5*2ms = 1.5 ms *)
  check_float ~eps:1e-6 "expected detection cost" 1.5e-3
    s.Schedule.expected_detection_cost

let test_schedule_unknown_config () =
  (try
     ignore
       (Schedule.order ~cost_model:Schedule.default_cost_model
          ~configs:sched_configs ~weights:[] ~detections:[]
          [ mk_test "t" 42 ]);
     Alcotest.fail "unknown config accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------ Equivalence *)

let fake_result fid cid params critical =
  {
    Generate.fault_id = fid;
    dictionary_fault = Faults.Fault.bridge "a" "b" ~resistance:10e3;
    candidates = [];
    outcome =
      Generate.Unique
        {
          config_id = cid;
          params;
          critical_impact = critical;
          dictionary_sensitivity = -1.;
        };
    trace = [];
  }

let test_equivalence_classes () =
  let results =
    [
      fake_result "f1" 1 [| 10e-6 |] 100e3;
      fake_result "f2" 1 [| 10.1e-6 |] 110e3;  (* same class as f1 *)
      fake_result "f3" 1 [| 40e-6 |] 100e3;    (* far in parameter space *)
      fake_result "f4" 2 [| 10e-6; 20e-6 |] 100e3;  (* other config *)
    ]
  in
  let classes =
    Equivalence.classes ~configs:Experiments.Iv_configs.all results
  in
  Alcotest.(check int) "three classes" 3 (List.length classes);
  let c1 =
    List.find
      (fun c -> List.mem "f1" c.Equivalence.members)
      classes
  in
  Alcotest.(check (list string)) "f1+f2 together" [ "f1"; "f2" ]
    (List.sort compare c1.Equivalence.members);
  (* representative: the weakest-detectable-impact member, f2 at 110k *)
  Alcotest.(check string) "representative" "f2" c1.Equivalence.representative;
  check_float "collapse ratio" (4. /. 3.) (Equivalence.collapse_ratio classes)

let test_equivalence_impact_gate () =
  let results =
    [
      fake_result "f1" 1 [| 10e-6 |] 1e3;
      fake_result "f2" 1 [| 10e-6 |] 1e6;  (* same point, impacts 1000x apart *)
    ]
  in
  let classes =
    Equivalence.classes ~configs:Experiments.Iv_configs.all results
  in
  Alcotest.(check int) "impact ratio separates" 2 (List.length classes)

(* ----------------------------------------------- Monte-Carlo calibration *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let test_mc_calibration () =
  let rng = Numerics.Rng.create 5L in
  let samples =
    List.map
      (Experiments.Setup.target_of_macro Macros.Iv_converter.macro)
      (Macros.Process.monte_carlo rng ~n:30)
  in
  let model =
    Tolerance.calibrate_monte_carlo Experiments.Iv_configs.config1
      ~nominal:iv_target ~samples ~grid:2 ()
  in
  let b = Tolerance.box model [| 25e-6 |] in
  Alcotest.(check bool) "box above floor" true (b.(0) >= 1e-3);
  (* a sub-max quantile produces a box no wider than the max envelope *)
  let model90 =
    Tolerance.calibrate_monte_carlo Experiments.Iv_configs.config1
      ~nominal:iv_target ~samples ~grid:2 ~quantile:90. ()
  in
  let b90 = Tolerance.box model90 [| 25e-6 |] in
  Alcotest.(check bool)
    (Printf.sprintf "quantile tightens the box (%.4g <= %.4g)" b90.(0) b.(0))
    true
    (b90.(0) <= b.(0) +. 1e-12)

let test_mc_calibration_validation () =
  (try
     ignore
       (Tolerance.calibrate_monte_carlo Experiments.Iv_configs.config1
          ~nominal:iv_target ~samples:[] ());
     Alcotest.fail "no samples accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Tolerance.calibrate_monte_carlo Experiments.Iv_configs.config1
          ~nominal:iv_target ~samples:[ iv_target ] ~quantile:0. ());
     Alcotest.fail "zero quantile accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------- AC configuration *)

let test_ac_config_validation () =
  let p =
    Test_param.create ~name:"f" ~units:"Hz" ~lower:1e3 ~upper:1e6 ~seed:1e4
  in
  let analysis =
    Test_config.Ac_gain
      { bias = (fun _ -> Circuit.Waveform.Dc 0.); freq = (fun v -> v.(0)) }
  in
  (try
     ignore
       (Test_config.create ~id:1 ~name:"x" ~macro_type:"m" ~control_node:"c"
          ~params:[ p ] ~analysis ~returns:Test_config.Per_component
          ~return_names:[ "gain" ] ~accuracy_floor:[ 0.1 ] ~summary:"");
     Alcotest.fail "single return accepted for AC"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Test_config.create ~id:1 ~name:"x" ~macro_type:"m" ~control_node:"c"
          ~params:[ p ] ~analysis ~returns:Test_config.Max_abs_delta
          ~return_names:[ "gain" ] ~accuracy_floor:[ 0.1 ] ~summary:"");
     Alcotest.fail "delta returns accepted for AC"
   with Invalid_argument _ -> ())

let test_ac_observables () =
  let obs =
    Execute.observables Experiments.Extensions.config6_ac iv_target
      [| 0.; 1e5 |]
  in
  Alcotest.(check int) "gain and phase" 2 (Array.length obs);
  (* closed-loop transimpedance 20k = 86 dB(Ohm) in the passband *)
  Alcotest.(check bool)
    (Printf.sprintf "gain %.1f dB near 86" obs.(0))
    true
    (Float.abs (obs.(0) -. 86.) < 2.)

let test_ac_detects_follower_bridge () =
  let config = Experiments.Extensions.config6_ac in
  let ev =
    Evaluator.create config ~nominal:iv_target
      ~box_model:(Tolerance.floor_only config)
  in
  (* at a well-chosen bias/frequency the n2-vout bridge moves the loop
     response measurably *)
  let s =
    Evaluator.sensitivity ev
      (Faults.Fault.bridge "n2" "vout" ~resistance:10e3)
      [| 30e-6; 2.5e6 |]
  in
  Alcotest.(check bool) (Printf.sprintf "AC sees n2-vout (S=%.2f)" s) true
    (s < 0.)

(* -------------------------------------------------------------------- IMD *)

let test_multi_sine_waveform () =
  let w =
    Circuit.Waveform.Multi_sine
      { offset = 1.; tones = [ (0.5, 1e3); (0.25, 2e3) ] }
  in
  check_float "at 0" 1. (Circuit.Waveform.value w 0.);
  (* quarter period of the 1 kHz tone: sin = 1; 2 kHz tone: sin(pi) = 0 *)
  check_float ~eps:1e-9 "quarter period" 1.5 (Circuit.Waveform.value w 0.25e-3);
  check_float "dc is offset" 1. (Circuit.Waveform.dc_value w);
  Alcotest.(check bool) "validates" true
    (Result.is_ok (Circuit.Waveform.validate w));
  Alcotest.(check bool) "empty tones rejected" true
    (Result.is_error
       (Circuit.Waveform.validate
          (Circuit.Waveform.Multi_sine { offset = 0.; tones = [] })))

let test_imd_analysis_known () =
  (* synthesize tones at bins 5 and 6 plus a known IMD3 product at bin 4 *)
  let n = 1024 in
  let s =
    Array.init n (fun i ->
        let ph k = 2. *. Float.pi *. float_of_int (k * i) /. float_of_int n in
        sin (ph 5) +. sin (ph 6) +. (0.02 *. sin (ph 4)))
  in
  let a =
    Sigproc.Imd.analyze ~samples:s ~sample_rate:(float_of_int n) ~base_freq:1.
      ~k1:5 ~k2:6 ()
  in
  check_float ~eps:1e-6 "tone1" 1. a.Sigproc.Imd.tone1;
  check_float ~eps:1e-6 "tone2" 1. a.Sigproc.Imd.tone2;
  check_float ~eps:1e-6 "imd3 low" 0.02 a.Sigproc.Imd.imd3_low;
  check_float ~eps:1e-6 "imd3 percent" 2. a.Sigproc.Imd.imd3_percent

let test_imd_validation () =
  let s = Array.make 64 0. in
  (try
     ignore
       (Sigproc.Imd.analyze ~samples:s ~sample_rate:64. ~base_freq:1. ~k1:6
          ~k2:5 ());
     Alcotest.fail "k2 < k1 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Sigproc.Imd.analyze ~samples:s ~sample_rate:64. ~base_freq:1. ~k1:2
          ~k2:5 ());
     Alcotest.fail "product below DC accepted"
   with Invalid_argument _ -> ())

let test_imd_config_observable () =
  let config = Experiments.Extensions.config7_imd in
  let obs =
    Execute.observables ~profile:Execute.fast_profile config iv_target
      (Test_config.param_values_of_seed config)
  in
  Alcotest.(check int) "one return" 1 (Array.length obs);
  Alcotest.(check bool)
    (Printf.sprintf "nominal IMD3 small (%.4f%%)" obs.(0))
    true (obs.(0) < 0.05)

let test_imd_detects_hard_fault () =
  let config = Experiments.Extensions.config7_imd in
  let ev =
    Evaluator.create ~profile:Execute.fast_profile config ~nominal:iv_target
      ~box_model:(Tolerance.floor_only config)
  in
  let s =
    Evaluator.sensitivity ev
      (Faults.Fault.bridge "n1" "vout" ~resistance:10e3)
      (Test_config.param_values_of_seed config)
  in
  Alcotest.(check bool) (Printf.sprintf "detects (S=%.1f)" s) true (s < 0.)

let test_multisine_parser () =
  let deck = "t\nVv1 a 0 multisine(1m, 2m:1k, 3m:2k)\nRr a 0 1k\n" in
  match Circuit.Spice_parser.parse deck with
  | Error e -> Alcotest.fail e.Circuit.Spice_parser.message
  | Ok nl -> begin
      match Circuit.Netlist.find nl "v1" with
      | Some
          (Circuit.Device.Vsource
             { wave = Circuit.Waveform.Multi_sine { offset; tones }; _ }) ->
          check_float "offset" 1e-3 offset;
          Alcotest.(check int) "two tones" 2 (List.length tones)
      | Some _ | None -> Alcotest.fail "v1 not a multisine source"
    end

(* ------------------------------------------------------------ Noise config *)

let test_noise_config_observable () =
  let config = Experiments.Extensions.config8_noise in
  let obs =
    Execute.observables config iv_target
      (Test_config.param_values_of_seed config)
  in
  Alcotest.(check int) "one value" 1 (Array.length obs);
  Alcotest.(check bool)
    (Printf.sprintf "plausible density %.1f nV/rtHz" obs.(0))
    true
    (obs.(0) > 5. && obs.(0) < 500.)

let test_noise_config_detects_resistive_fault () =
  (* bridging the feedback node to ground adds a big resistive noise path
     and reshapes the loop: the noise signature moves *)
  let config = Experiments.Extensions.config8_noise in
  let ev =
    Evaluator.create config ~nominal:iv_target
      ~box_model:(Tolerance.floor_only config)
  in
  let s =
    Evaluator.sensitivity ev
      (Faults.Fault.bridge "n1" "vout" ~resistance:10e3)
      (Test_config.param_values_of_seed config)
  in
  Alcotest.(check bool) (Printf.sprintf "noise signature shifts (S=%.2f)" s)
    true (s < 0.)

let test_noise_config_validation () =
  let p =
    Test_param.create ~name:"f" ~units:"Hz" ~lower:1e3 ~upper:1e6 ~seed:1e4
  in
  (try
     ignore
       (Test_config.create ~id:92 ~name:"x" ~macro_type:"m" ~control_node:"c"
          ~params:[ p ]
          ~analysis:
            (Test_config.Noise_psd
               { bias = (fun _ -> Circuit.Waveform.Dc 0.);
                 freq = (fun v -> v.(0)) })
          ~returns:Test_config.Max_abs_delta ~return_names:[ "n" ]
          ~accuracy_floor:[ 1. ] ~summary:"");
     Alcotest.fail "delta returns accepted for noise"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------- Sallen-Key *)

let test_sk_validates () =
  match Macros.Macro.validate Macros.Sallen_key.macro with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_sk_response () =
  let nl = Macros.Macro.nominal_netlist Macros.Sallen_key.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  (* DC passes through to the buffered output *)
  Alcotest.(check bool) "dc follows" true
    (Float.abs (Circuit.Mna.voltage sys op "out" -. 2.5) < 0.05);
  let fc = Macros.Sallen_key.cutoff_hz in
  let gain f =
    match
      Circuit.Ac.sweep sys ~op ~source:"vin_src" ~freqs:[| f |] ~observe:"out"
    with
    | [ p ] -> Circuit.Ac.gain_db p.Circuit.Ac.value
    | _ -> Alcotest.fail "sweep"
  in
  Alcotest.(check bool) "flat passband" true (Float.abs (gain (fc /. 20.)) < 0.5);
  Alcotest.(check bool) "-3dB at fc" true (Float.abs (gain fc +. 3.) < 1.);
  Alcotest.(check bool) "-40dB/decade" true (gain (fc *. 10.) < -35.)

let test_sk_fault_universe () =
  let d = Macros.Macro.dictionary Macros.Sallen_key.macro in
  let b, p = Faults.Dictionary.count_by_kind d in
  (* 9 fault nodes -> 36 bridges; 6 MOSFETs -> 6 pinholes *)
  Alcotest.(check (pair int int)) "counts" (36, 6) (b, p)

let () =
  Alcotest.run "extensions"
    [
      ( "ifa",
        [
          Alcotest.test_case "shared devices" `Quick test_ifa_shared_devices;
          Alcotest.test_case "bridge weights" `Quick test_ifa_bridge_weights;
          Alcotest.test_case "pinhole weights" `Quick test_ifa_pinhole_weights;
          Alcotest.test_case "normalization" `Quick test_ifa_weigh_normalizes;
          Alcotest.test_case "weighted coverage" `Quick test_ifa_weighted_coverage;
          Alcotest.test_case "sort" `Quick test_ifa_sort;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "test cost" `Quick test_test_cost;
          Alcotest.test_case "greedy order" `Quick test_schedule_greedy_order;
          Alcotest.test_case "expected cost" `Quick test_schedule_expected_cost;
          Alcotest.test_case "unknown config" `Quick test_schedule_unknown_config;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "classes" `Quick test_equivalence_classes;
          Alcotest.test_case "impact gate" `Quick test_equivalence_impact_gate;
        ] );
      ( "tolerance-mc",
        [
          Alcotest.test_case "calibrates" `Quick test_mc_calibration;
          Alcotest.test_case "validation" `Quick test_mc_calibration_validation;
        ] );
      ( "ac-config",
        [
          Alcotest.test_case "validation" `Quick test_ac_config_validation;
          Alcotest.test_case "observables" `Quick test_ac_observables;
          Alcotest.test_case "detects follower bridge" `Quick
            test_ac_detects_follower_bridge;
        ] );
      ( "imd",
        [
          Alcotest.test_case "multi-sine waveform" `Quick test_multi_sine_waveform;
          Alcotest.test_case "known analysis" `Quick test_imd_analysis_known;
          Alcotest.test_case "validation" `Quick test_imd_validation;
          Alcotest.test_case "config observable" `Quick test_imd_config_observable;
          Alcotest.test_case "detects hard fault" `Quick test_imd_detects_hard_fault;
          Alcotest.test_case "parser support" `Quick test_multisine_parser;
        ] );
      ( "noise-config",
        [
          Alcotest.test_case "observable" `Quick test_noise_config_observable;
          Alcotest.test_case "detects resistive fault" `Quick
            test_noise_config_detects_resistive_fault;
          Alcotest.test_case "validation" `Quick test_noise_config_validation;
        ] );
      ( "sallen-key",
        [
          Alcotest.test_case "validates" `Quick test_sk_validates;
          Alcotest.test_case "frequency response" `Quick test_sk_response;
          Alcotest.test_case "fault universe" `Quick test_sk_fault_universe;
        ] );
    ]
