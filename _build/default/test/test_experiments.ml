(* Tests for the experiment wiring: the Table-1 configurations, context
   setup, and the cheap report generators. *)

open Testgen

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------- Iv_configs *)

let test_config_inventory () =
  Alcotest.(check int) "five configurations" 5
    (List.length Experiments.Iv_configs.all);
  let one_param, two_param =
    List.partition
      (fun c -> Test_config.n_params c = 1)
      Experiments.Iv_configs.all
  in
  (* the paper: "Two test configurations have only one attached parameter,
     the other three configurations have two parameters." *)
  Alcotest.(check int) "two single-parameter configs" 2 (List.length one_param);
  Alcotest.(check int) "three two-parameter configs" 3 (List.length two_param)

let test_config_ids () =
  List.iteri
    (fun i c ->
      Alcotest.(check int) "sequential ids" (i + 1) c.Test_config.config_id)
    Experiments.Iv_configs.all;
  Alcotest.(check string) "by_id" "THD"
    (Experiments.Iv_configs.by_id 3).Test_config.config_name;
  (try
     ignore (Experiments.Iv_configs.by_id 9);
     Alcotest.fail "bad id accepted"
   with Not_found -> ())

let test_config_macro_type () =
  List.iter
    (fun c ->
      Alcotest.(check string) "IV-converter type" "IV-converter"
        c.Test_config.macro_type)
    Experiments.Iv_configs.all

let test_step_configs_sampling () =
  (* paper: configurations #4 and #5 sample Vout at 100 MHz during 7.5 us *)
  List.iter
    (fun id ->
      match (Experiments.Iv_configs.by_id id).Test_config.analysis with
      | Test_config.Tran_samples { sample_rate; test_time; _ } ->
          Alcotest.(check (float 1.)) "100 MHz" 100e6 sample_rate;
          Alcotest.(check (float 1e-12)) "7.5 us" 7.5e-6 test_time
      | Test_config.Dc_levels _ | Test_config.Tran_thd _
      | Test_config.Ac_gain _ | Test_config.Tran_imd _
      | Test_config.Noise_psd _ ->
          Alcotest.fail "step configuration must be Tran_samples")
    [ 4; 5 ]

let test_thd_config_stimulus () =
  match (Experiments.Iv_configs.by_id 3).Test_config.analysis with
  | Test_config.Tran_thd { stimulus; fundamental } ->
      let w = stimulus [| 20e-6; 10e3 |] in
      (match w with
      | Circuit.Waveform.Sine { offset; ampl; freq; _ } ->
          Alcotest.(check (float 1e-12)) "offset is Iin_dc" 20e-6 offset;
          Alcotest.(check (float 1e-12)) "fixed 10uA amplitude"
            Experiments.Iv_configs.sine_amplitude ampl;
          Alcotest.(check (float 1e-6)) "freq param" 10e3 freq
      | _ -> Alcotest.fail "expected a sine");
      Alcotest.(check (float 1e-6)) "fundamental = freq" 10e3
        (fundamental [| 20e-6; 10e3 |])
  | _ -> Alcotest.fail "config 3 must be Tran_thd"

(* ------------------------------------------------------------------ Setup *)

let tiny_ctx =
  lazy
    (Experiments.Setup.create ~profile:Execute.fast_profile ~grid:2
       ~corners:
         [
           { Macros.Process.nominal with Macros.Process.label = "res+"; dres = 0.15 };
           { Macros.Process.nominal with Macros.Process.label = "res-"; dres = -0.15 };
         ]
       ~macro:Macros.Iv_converter.macro
       ~configs:[ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]
       ())

let test_setup_evaluators () =
  let ctx = Lazy.force tiny_ctx in
  Alcotest.(check int) "one evaluator per config" 2
    (List.length ctx.Experiments.Setup.evaluators);
  Alcotest.(check int) "dictionary is the macro's" 55
    (Faults.Dictionary.size ctx.Experiments.Setup.dictionary);
  let ev = Experiments.Setup.evaluator ctx 2 in
  Alcotest.(check int) "lookup by id" 2 (Evaluator.config_id ev);
  (try
     ignore (Experiments.Setup.evaluator ctx 9);
     Alcotest.fail "bad id accepted"
   with Not_found -> ())

let test_setup_reduced () =
  let ctx = Lazy.force tiny_ctx in
  let small = Experiments.Setup.reduced ctx ~n_faults:7 in
  Alcotest.(check int) "truncated" 7
    (Faults.Dictionary.size small.Experiments.Setup.dictionary)

(* ------------------------------------------------------------------- Runs *)

let test_fig1_report () =
  let s = Experiments.Runs.fig1 () in
  Alcotest.(check bool) "names the macro type" true (contains s "IV-converter");
  Alcotest.(check bool) "shows the configuration" true
    (contains s "Step response")

let test_tab1_report () =
  let s = Experiments.Runs.tab1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "DC level"; "DC pair"; "THD"; "Step response"; "return value" ]

let test_fig7_report () =
  let s = Experiments.Runs.fig7 () in
  Alcotest.(check bool) "shows the split segments" true
    (contains s "m6_drainseg" && contains s "m6_srcseg");
  Alcotest.(check bool) "shows the shunt" true (contains s "m6_pinhole");
  (* drain segment is a quarter of L = 1u *)
  Alcotest.(check bool) "L/4" true (contains s "L=250n");
  Alcotest.(check bool) "3L/4" true (contains s "L=750n")

let test_fig5_report () =
  let ctx = Lazy.force tiny_ctx in
  let s = Experiments.Runs.fig5 ctx in
  Alcotest.(check bool) "mentions the box" true (contains s "tolerance box");
  Alcotest.(check bool) "shows both responses" true
    (contains s "R(T)_1" && contains s "R(T)_2");
  Alcotest.(check bool) "classifies detection" true
    (contains s "leaves the box")

let test_tps_fault_well_formed () =
  Alcotest.(check string) "bridge n1-vout" "bridge:n1-vout"
    (Faults.Fault.id Experiments.Runs.tps_fault)

let () =
  Alcotest.run "experiments"
    [
      ( "iv_configs",
        [
          Alcotest.test_case "inventory" `Quick test_config_inventory;
          Alcotest.test_case "ids" `Quick test_config_ids;
          Alcotest.test_case "macro type" `Quick test_config_macro_type;
          Alcotest.test_case "step sampling spec" `Quick test_step_configs_sampling;
          Alcotest.test_case "thd stimulus" `Quick test_thd_config_stimulus;
        ] );
      ( "setup",
        [
          Alcotest.test_case "evaluators" `Quick test_setup_evaluators;
          Alcotest.test_case "reduced" `Quick test_setup_reduced;
        ] );
      ( "runs",
        [
          Alcotest.test_case "fig1" `Quick test_fig1_report;
          Alcotest.test_case "tab1" `Quick test_tab1_report;
          Alcotest.test_case "fig7" `Quick test_fig7_report;
          Alcotest.test_case "fig5" `Quick test_fig5_report;
          Alcotest.test_case "tps fault" `Quick test_tps_fault_well_formed;
        ] );
    ]
