(* Unit and property tests for the numerics library. *)

open Numerics

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* ------------------------------------------------------------------ Vec *)

let test_vec_basic () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  check_float "dot" 32. (Vec.dot a b);
  check_float "norm2" (sqrt 14.) (Vec.norm2 a);
  check_float "norm_inf" 3. (Vec.norm_inf a);
  check_float "dist_inf" 3. (Vec.dist_inf a b);
  Alcotest.(check (array (float 1e-12)))
    "axpy" [| 6.; 9.; 12. |] (Vec.axpy 2. a b)

let test_vec_clamp () =
  let lower = [| 0.; 0. |] and upper = [| 1.; 1. |] in
  Alcotest.(check (array (float 1e-12)))
    "clamp" [| 0.; 1. |]
    (Vec.clamp ~lower ~upper [| -5.; 7. |])

let test_vec_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec: dimension mismatch")
    (fun () -> ignore (Vec.add [| 1. |] [| 1.; 2. |]))

(* ------------------------------------------------------------------ Mat *)

let test_mat_identity () =
  let i3 = Mat.identity 3 in
  let v = [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "I v = v" v (Mat.mul_vec i3 v);
  check_float "det I" 1. (Mat.det i3)

let test_mat_solve_known () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Mat.solve a [| 5.; 10. |] in
  check_float "x" 1. x.(0);
  check_float "y" 3. x.(1)

let test_mat_pivoting () =
  (* leading zero pivot forces a row swap *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Mat.solve a [| 3.; 7. |] in
  check_float "x" 7. x.(0);
  check_float "y" 3. x.(1)

let test_mat_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  (match Mat.lu_factor a with
  | exception Mat.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_float "det singular" 0. (Mat.det a)

let test_mat_det () =
  let a = Mat.of_rows [| [| 3.; 1. |]; [| 2.; 5. |] |] in
  check_float "det" 13. (Mat.det a);
  (* swap rows: determinant negates *)
  let b = Mat.of_rows [| [| 2.; 5. |]; [| 3.; 1. |] |] in
  check_float "det swapped" (-13.) (Mat.det b)

let test_mat_transpose_mul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check int) "rows" 2 (Mat.rows at);
  Alcotest.(check int) "cols" 3 (Mat.cols at);
  let ata = Mat.mul at a in
  check_float "ata(0,0)" 35. (Mat.get ata 0 0);
  check_float "ata(0,1)" 44. (Mat.get ata 0 1);
  check_float "ata(1,1)" 56. (Mat.get ata 1 1)

let prop_lu_roundtrip =
  QCheck.Test.make ~name:"lu solve then multiply recovers rhs" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let a = Mat.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.set a i j (Rng.uniform rng ~lo:(-1.) ~hi:1.)
        done;
        (* diagonal dominance keeps the matrix comfortably regular *)
        Mat.add_to a i i (float_of_int n *. 2.)
      done;
      let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-10.) ~hi:10.) in
      let x = Mat.solve a b in
      let b' = Mat.mul_vec a x in
      Vec.dist_inf b b' < 1e-8)

(* ------------------------------------------------------- Mat rank-1 *)

let random_system rng n =
  let a = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set a i j (Rng.uniform rng ~lo:(-1.) ~hi:1.)
    done;
    Mat.add_to a i i (float_of_int n *. 2.)
  done;
  let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-10.) ~hi:10.) in
  (a, b)

let test_lu_blit () =
  let rng = Rng.create 31L in
  let n = 6 in
  let a, b = random_system rng n in
  let src = Mat.lu_workspace n in
  Mat.factor_in_place a src;
  let dst = Mat.lu_workspace n in
  Mat.lu_blit ~src ~dst;
  let x1 = Array.make n 0. and x2 = Array.make n 0. in
  Mat.solve_into src b x1;
  Mat.solve_into dst b x2;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "blit solve bit-identical" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float x2.(i))))
    x1;
  (match Mat.lu_blit ~src ~dst:(Mat.lu_workspace (n + 1)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on size mismatch");
  match Mat.lu_blit ~src:(Mat.lu_workspace n) ~dst with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on unfactored source"

let prop_rank1_parity =
  QCheck.Test.make
    ~name:"rank1_solve matches direct solve of the updated matrix" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int (seed + 3)) in
      let a, b = random_system rng n in
      let u = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
      let v = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
      let dg = Rng.uniform rng ~lo:(-0.5) ~hi:0.5 in
      let ws = Mat.lu_workspace n in
      Mat.factor_in_place a ws;
      let x = Array.make n 0. in
      let ok =
        Mat.rank1_solve ws (Mat.rank1_workspace n) ~u ~v ~dg ~b ~x
      in
      (* the perturbed matrix stays diagonally dominant for |dg| <= 0.5,
         so the guard should never trip here *)
      ok
      &&
      let a' = Mat.copy a in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.add_to a' i j (dg *. u.(i) *. v.(j))
        done
      done;
      let x_direct = Mat.solve a' b in
      Vec.dist_inf x x_direct < 1e-8)

let test_rank1_guard_trips () =
  (* dg = -1 / (v^T A^-1 u) makes the Sherman-Morrison denominator
     exactly zero: the updated matrix is singular and the guard must
     refuse rather than divide *)
  let n = 3 in
  let rng = Rng.create 77L in
  let a, b = random_system rng n in
  let u = Array.init n (fun i -> float_of_int (i + 1)) in
  let v = Array.init n (fun i -> float_of_int ((i * 2) + 1)) in
  let ws = Mat.lu_workspace n in
  Mat.factor_in_place a ws;
  let w = Array.make n 0. in
  Mat.solve_into ws u w;
  let dg = -1. /. Vec.dot v w in
  let x = Array.make n Float.nan in
  let ok = Mat.rank1_solve ws (Mat.rank1_workspace n) ~u ~v ~dg ~b ~x in
  Alcotest.(check bool) "guard refuses the singular update" false ok;
  Alcotest.(check bool) "x untouched on refusal" true
    (Array.for_all Float.is_nan x)

let test_rank1_fallback_bit_exact () =
  (* the caller's fallback (refactor the updated matrix, solve) must be
     bit-exact with assembling and solving the updated matrix directly —
     the property Dc relies on to keep the conditioning-guard path
     invisible in results *)
  let n = 5 in
  let rng = Rng.create 13L in
  let a, b = random_system rng n in
  let u = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let v = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let dg = 0.25 in
  let a' = Mat.copy a in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.add_to a' i j (dg *. u.(i) *. v.(j))
    done
  done;
  (* fallback path: reuse the Newton workspace *)
  let ws = Mat.lu_workspace n in
  Mat.factor_in_place a ws;
  (* held factorization of A, as the continuation would hold *)
  Mat.factor_in_place a' ws;
  let x_fallback = Array.make n 0. in
  Mat.solve_into ws b x_fallback;
  (* reference path: fresh factorization *)
  let x_direct = Mat.solve a' b in
  Array.iteri
    (fun i xi ->
      Alcotest.(check bool) "fallback bit-exact" true
        (Int64.equal
           (Int64.bits_of_float xi)
           (Int64.bits_of_float x_direct.(i))))
    x_fallback

let test_rank1_solve_validation () =
  let n = 3 in
  let ws = Mat.lu_workspace n in
  let r1 = Mat.rank1_workspace n in
  let z () = Array.make n 0. in
  (match
     Mat.rank1_solve ws r1 ~u:(z ()) ~v:(z ()) ~dg:0.1 ~b:(z ()) ~x:(z ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on unfactored workspace");
  let rng = Rng.create 3L in
  let a, b = random_system rng n in
  Mat.factor_in_place a ws;
  match Mat.rank1_solve ws r1 ~u:(z ()) ~v:(z ()) ~dg:0.1 ~b ~x:b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on aliased b and x"

(* ----------------------------------------------------------------- Cmat *)

let test_cmat_solve () =
  (* (1+i) x = 2i  ->  x = 2i/(1+i) = 1 + i *)
  let a = Cmat.create 1 1 in
  Cmat.set a 0 0 { Complex.re = 1.; im = 1. };
  let x = Cmat.solve a [| { Complex.re = 0.; im = 2. } |] in
  check_float "re" 1. x.(0).Complex.re;
  check_float "im" 1. x.(0).Complex.im

let test_cmat_rank1_update () =
  let n = 4 in
  let rng = Rng.create 19L in
  let mk () =
    let m = Cmat.create n n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Cmat.set m i j
          {
            Complex.re = Rng.uniform rng ~lo:(-1.) ~hi:1.;
            im = Rng.uniform rng ~lo:(-1.) ~hi:1.;
          }
      done
    done;
    m
  in
  let a = mk () in
  let reference = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Cmat.set reference i j (Cmat.get a i j)
    done
  done;
  let dg = { Complex.re = 0.7; im = -0.3 } in
  let i = 1 and j = 2 in
  Cmat.rank1_update a ~i ~j ~dg;
  Cmat.add_to reference i i dg;
  Cmat.add_to reference j j dg;
  Cmat.add_to reference i j (Complex.neg dg);
  Cmat.add_to reference j i (Complex.neg dg);
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let x = Cmat.get a r c and y = Cmat.get reference r c in
      Alcotest.(check bool)
        (Printf.sprintf "entry (%d,%d)" r c)
        true
        (x.Complex.re = y.Complex.re && x.Complex.im = y.Complex.im)
    done
  done;
  (* a grounded terminal contributes only the surviving diagonal *)
  let g = mk () in
  let before = Cmat.get g 0 0 in
  Cmat.rank1_update g ~i:0 ~j:(-1) ~dg;
  let after = Cmat.get g 0 0 in
  Alcotest.(check bool) "ground: diagonal bumped" true
    (after.Complex.re = before.Complex.re +. dg.Complex.re
    && after.Complex.im = before.Complex.im +. dg.Complex.im);
  match Cmat.rank1_update g ~i:n ~j:0 ~dg with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on out-of-range index"

let test_cmat_residual () =
  let rng = Rng.create 42L in
  let n = 5 in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Cmat.set a i j
        { Complex.re = Rng.uniform rng ~lo:(-1.) ~hi:1.;
          im = Rng.uniform rng ~lo:(-1.) ~hi:1. }
    done;
    Cmat.add_to a i i { Complex.re = 10.; im = 0. }
  done;
  let b =
    Array.init n (fun _ ->
        { Complex.re = Rng.uniform rng ~lo:(-1.) ~hi:1.; im = 0. })
  in
  let x = Cmat.solve a b in
  let b' = Cmat.mul_vec a x in
  let err =
    Array.fold_left
      (fun m i -> Float.max m i)
      0.
      (Array.init n (fun i -> Complex.norm (Complex.sub b.(i) b'.(i))))
  in
  Alcotest.(check bool) "residual small" true (err < 1e-10)

(* ---------------------------------------------------------------- Brent *)

let test_brent_quadratic () =
  let r = Brent.minimize ~f:(fun x -> (x -. 2.) ** 2.) ~a:0. ~b:5. () in
  check_float ~eps:1e-4 "xmin" 2. r.Brent.xmin;
  check_float ~eps:1e-6 "fmin" 0. r.Brent.fmin

let test_brent_nonsmooth () =
  let r = Brent.minimize ~f:(fun x -> Float.abs (x -. 1.3)) ~a:(-4.) ~b:4. () in
  check_float ~eps:1e-4 "xmin of |x-1.3|" 1.3 r.Brent.xmin

let test_brent_boundary () =
  (* monotone decreasing: minimum at the right edge *)
  let r = Brent.minimize ~f:(fun x -> -.x) ~a:0. ~b:1. () in
  Alcotest.(check bool) "at right edge" true (r.Brent.xmin > 0.99)

let test_golden_agrees () =
  let f x = ((x -. 0.7) ** 2.) +. 1. in
  let rb = Brent.minimize ~f ~a:(-2.) ~b:2. () in
  let rg = Brent.golden ~f ~a:(-2.) ~b:2. () in
  check_float ~eps:1e-3 "golden vs brent" rb.Brent.xmin rg.Brent.xmin

let test_bracket_scan () =
  (* two minima: global at 4.5, local at 0.5; scan should pick the global *)
  let f x = Float.min ((x -. 4.5) ** 2.) (0.5 +. ((x -. 0.5) ** 2.)) in
  let lo, hi = Brent.bracket_scan ~f ~a:0. ~b:5. ~n:20 in
  Alcotest.(check bool) "brackets global min" true (lo <= 4.5 && 4.5 <= hi)

let prop_brent_in_bounds =
  QCheck.Test.make ~name:"brent stays within [a,b]" ~count:100
    QCheck.(pair (float_range (-5.) 0.) (float_range 0.1 5.))
    (fun (a, width) ->
      let b = a +. width in
      let r = Brent.minimize ~f:(fun x -> sin (3. *. x)) ~a ~b () in
      r.Brent.xmin >= a -. 1e-9 && r.Brent.xmin <= b +. 1e-9)

(* iteration/evaluation accounting (the fields the optimizer span and
   the profile report consume) *)

let test_brent_degenerate_counts () =
  let evals = ref 0 in
  let f x =
    incr evals;
    x *. x
  in
  let r = Brent.minimize ~f ~a:1. ~b:1. () in
  Alcotest.(check int) "degenerate interval: zero iterations" 0
    r.Brent.iterations;
  Alcotest.(check int) "degenerate interval: one evaluation" 1 r.Brent.evals;
  Alcotest.(check int) "evals field matches calls made" !evals r.Brent.evals;
  check_float ~eps:0. "fmin is f a, not garbage" 1. r.Brent.fmin

let test_brent_eval_accounting () =
  let evals = ref 0 in
  let f x =
    incr evals;
    (x -. 2.) ** 2.
  in
  let r = Brent.minimize ~f ~a:0. ~b:5. () in
  Alcotest.(check int) "evals counts objective calls" !evals r.Brent.evals;
  Alcotest.(check bool) "evals >= iterations" true
    (r.Brent.evals >= r.Brent.iterations)

let test_brent_max_iter_bounds_iterations () =
  let r =
    Brent.minimize ~f:(fun x -> sin (5. *. x)) ~a:(-3.) ~b:3. ~max_iter:4 ()
  in
  Alcotest.(check bool) "iterations bounded by max_iter" true
    (r.Brent.iterations <= 4)

let test_golden_eval_accounting () =
  let evals = ref 0 in
  let f x =
    incr evals;
    ((x -. 0.7) ** 2.) +. 1.
  in
  let r = Brent.golden ~f ~a:(-2.) ~b:2. () in
  Alcotest.(check int) "golden evals = iterations + 2"
    (r.Brent.iterations + 2) r.Brent.evals;
  Alcotest.(check int) "evals field matches calls made" !evals r.Brent.evals

(* --------------------------------------------------------------- Powell *)

let test_powell_quadratic () =
  let f v = ((v.(0) -. 1.) ** 2.) +. (2. *. ((v.(1) +. 0.5) ** 2.)) in
  let r =
    Powell.minimize ~f ~lower:[| -5.; -5. |] ~upper:[| 5.; 5. |]
      ~start:[| 4.; 4. |] ()
  in
  check_float ~eps:1e-3 "x0" 1. r.Powell.xmin.(0);
  check_float ~eps:1e-3 "x1" (-0.5) r.Powell.xmin.(1)

let test_powell_coupled () =
  (* coupled quadratic that defeats naive coordinate descent speed *)
  let f v =
    let x = v.(0) and y = v.(1) in
    (x *. x) +. (4. *. y *. y) +. (3. *. x *. y) +. x -. y
  in
  let r =
    Powell.minimize ~f ~lower:[| -10.; -10. |] ~upper:[| 10.; 10. |]
      ~start:[| 5.; -5. |] ()
  in
  (* analytic optimum: grad = (2x+3y+1, 8y+3x-1) = 0 -> x = -11/7, y = 5/7 *)
  check_float ~eps:1e-2 "x" (-11. /. 7.) r.Powell.xmin.(0);
  check_float ~eps:1e-2 "y" (5. /. 7.) r.Powell.xmin.(1)

let test_powell_boundary () =
  (* unconstrained optimum outside the box: lands on the bound *)
  let f v = ((v.(0) -. 10.) ** 2.) +. (v.(1) ** 2.) in
  let r =
    Powell.minimize ~f ~lower:[| 0.; -1. |] ~upper:[| 2.; 1. |]
      ~start:[| 1.; 0.5 |] ()
  in
  check_float ~eps:1e-3 "clamped x" 2. r.Powell.xmin.(0)

let test_powell_scan () =
  (* multimodal: deep minimum near (3, 3), shallow near (0.5, 0.5) *)
  let f v =
    let d1 = ((v.(0) -. 3.) ** 2.) +. ((v.(1) -. 3.) ** 2.) in
    let d2 = ((v.(0) -. 0.5) ** 2.) +. ((v.(1) -. 0.5) ** 2.) in
    Float.min d1 (d2 +. 0.5)
  in
  let r =
    Powell.minimize_scan ~grid:5 ~f ~lower:[| 0.; 0. |] ~upper:[| 4.; 4. |] ()
  in
  check_float ~eps:1e-2 "global x" 3. r.Powell.xmin.(0)

let test_line_range () =
  let tmin, tmax =
    Powell.line_range ~lower:[| 0.; 0. |] ~upper:[| 1.; 2. |]
      ~point:[| 0.5; 1. |] ~dir:[| 1.; 0. |]
  in
  check_float "tmin" (-0.5) tmin;
  check_float "tmax" 0.5 tmax

let prop_powell_in_box =
  QCheck.Test.make ~name:"powell result stays in the box" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let cx = Rng.uniform rng ~lo:(-3.) ~hi:3. in
      let cy = Rng.uniform rng ~lo:(-3.) ~hi:3. in
      let f v = ((v.(0) -. cx) ** 2.) +. ((v.(1) -. cy) ** 2.) in
      let r =
        Powell.minimize ~f ~lower:[| -1.; -1. |] ~upper:[| 1.; 1. |]
          ~start:[| 0.; 0. |] ()
      in
      r.Powell.xmin.(0) >= -1.0000001
      && r.Powell.xmin.(0) <= 1.0000001
      && r.Powell.xmin.(1) >= -1.0000001
      && r.Powell.xmin.(1) <= 1.0000001)

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  Alcotest.(check bool) "different streams" true
    (Rng.float parent <> Rng.float child)

let test_rng_gaussian_moments () =
  let rng = Rng.create 2024L in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "std ~ 1" true (Float.abs (Stats.stddev xs -. 1.) < 0.05)

let test_rng_int_bounds () =
  let rng = Rng.create 11L in
  for _ = 1 to 10_000 do
    let x = Rng.int rng ~bound:7 in
    if x < 0 || x >= 7 then Alcotest.fail "Rng.int out of range"
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 7L in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" a sorted

let prop_uniform_in_range =
  QCheck.Test.make ~name:"uniform stays in [lo,hi)" ~count:200
    QCheck.(pair (float_range (-100.) 100.) (float_range 0.001 100.))
    (fun (lo, width) ->
      let rng = Rng.create (Int64.of_float (lo *. 1000.)) in
      let x = Rng.uniform rng ~lo ~hi:(lo +. width) in
      x >= lo && x < lo +. width)

(* Pinned fingerprints of the named streams everything deterministic is
   built on (failpoint sites, fuzz campaigns, scenario value draws): any
   change to Rng.of_key silently reshuffles recorded campaigns and
   injection patterns, so the first draws are locked here. *)
let test_of_key_fingerprints () =
  let fingerprint key =
    let rng = Rng.of_key ~seed:42L ~key in
    Array.init 8 (fun _ -> Rng.int64 rng)
  in
  let check key expected =
    Alcotest.(check (array int64))
      (Printf.sprintf "of_key %S first 8 draws" key)
      expected (fingerprint key)
  in
  check "alpha"
    [| 0x1a7ec7a2ef0972ebL; 0xda768488ef070a27L; 0x3f00fd5a9df08787L;
       0xd848a90f33eb93fcL; 0xddc9cf2d71efa26eL; 0x748549442829d6c6L;
       0xb6182a2b73f8b6cfL; 0xb29b6e841f0cc343L |];
  check "beta"
    [| 0xd0430e964fa18b48L; 0x8c67bfee2df31838L; 0xd0862b90fa927e9cL;
       0xd4cd60a6594649adL; 0xd94534b1a3046406L; 0x2171d27ad3b450ecL;
       0x7ab094a28f08b63bL; 0x1efce881d70626aaL |];
  check "fuzz.campaign.0001"
    [| 0xda4fd1ca63dedccdL; 0xa9fc11f4a60abc7cL; 0x5fb8a9892d3e0975L;
       0x6cfc95a17e6c59bcL; 0x4c915e77fbf32761L; 0x362d1f7a8fb7d4e5L;
       0xd63605ba6fa05320L; 0x5b5e19dc120d67d8L |]

let test_of_key_stable_across_instances () =
  let draws key =
    let rng = Rng.of_key ~seed:17L ~key in
    List.init 16 (fun _ -> Rng.int64 rng)
  in
  Alcotest.(check (list int64)) "same (seed, key) twice" (draws "x") (draws "x")

let prop_of_key_pairwise_independent =
  QCheck.Test.make ~name:"of_key streams pairwise distinct" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      QCheck.assume (not (String.equal a b));
      let draws key =
        let rng = Rng.of_key ~seed:5L ~key in
        Array.init 8 (fun _ -> Rng.int64 rng)
      in
      (* distinct keys must not share a stream: an 8-draw collision is a
         2^-512 event for independent streams, so any equality is a bug *)
      draws a <> draws b)

(* ------------------------------------------------------------- Checksum *)

let test_crc32_vectors () =
  let check msg expected s =
    Alcotest.(check int32) msg expected (Checksum.crc32 s)
  in
  (* the standard CRC-32/ISO-HDLC check value and friends *)
  check "check value" 0xCBF43926l "123456789";
  check "empty" 0l "";
  check "single a" 0xE8B7BE43l "a";
  check "abc" 0x352441C2l "abc"

let test_crc32_incremental () =
  let a = "atpg-session 1\n" and b = "result bridge:a-b\nfault ...\n" in
  Alcotest.(check int32) "crc32 ~crc chains"
    (Checksum.crc32 (a ^ b))
    (Checksum.crc32 ~crc:(Checksum.crc32 a) b);
  Alcotest.(check int32) "crc32_sub matches slice"
    (Checksum.crc32 b)
    (Checksum.crc32_sub (a ^ b) ~pos:(String.length a) ~len:(String.length b))

let prop_crc32_split_anywhere =
  QCheck.Test.make ~name:"crc32 incremental = whole, any split" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      Checksum.crc32 ~crc:(Checksum.crc32 a) b = Checksum.crc32 (a ^ b))

(* ---------------------------------------------------------------- Stats *)

let test_stats_basic () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_float "variance" 4. (Stats.variance xs);
  check_float "stddev" 2. (Stats.stddev xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 2. lo;
  check_float "max" 9. hi;
  check_float "median" 4.5 (Stats.median xs);
  check_float "p0" 2. (Stats.percentile xs 0.);
  check_float "p100" 9. (Stats.percentile xs 100.);
  check_float "max_abs" 9. (Stats.max_abs xs)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_linreg () =
  let samples = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, (3. *. x) -. 2.)) in
  let r = Stats.linear_regression samples in
  check_float "slope" 3. r.Stats.slope;
  check_float "intercept" (-2.) r.Stats.intercept;
  check_float "r2" 1. r.Stats.r2

let () =
  Alcotest.run "numerics"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "clamp" `Quick test_vec_clamp;
          Alcotest.test_case "mismatch raises" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity" `Quick test_mat_identity;
          Alcotest.test_case "solve known" `Quick test_mat_solve_known;
          Alcotest.test_case "pivoting" `Quick test_mat_pivoting;
          Alcotest.test_case "singular" `Quick test_mat_singular;
          Alcotest.test_case "determinant" `Quick test_mat_det;
          Alcotest.test_case "transpose and mul" `Quick test_mat_transpose_mul;
          QCheck_alcotest.to_alcotest prop_lu_roundtrip;
        ] );
      ( "mat-rank1",
        [
          Alcotest.test_case "lu_blit" `Quick test_lu_blit;
          QCheck_alcotest.to_alcotest prop_rank1_parity;
          Alcotest.test_case "conditioning guard trips" `Quick
            test_rank1_guard_trips;
          Alcotest.test_case "fallback bit-exact" `Quick
            test_rank1_fallback_bit_exact;
          Alcotest.test_case "argument validation" `Quick
            test_rank1_solve_validation;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "1x1 complex" `Quick test_cmat_solve;
          Alcotest.test_case "rank-1 update" `Quick test_cmat_rank1_update;
          Alcotest.test_case "residual" `Quick test_cmat_residual;
        ] );
      ( "brent",
        [
          Alcotest.test_case "quadratic" `Quick test_brent_quadratic;
          Alcotest.test_case "nonsmooth" `Quick test_brent_nonsmooth;
          Alcotest.test_case "boundary minimum" `Quick test_brent_boundary;
          Alcotest.test_case "golden agrees" `Quick test_golden_agrees;
          Alcotest.test_case "bracket scan" `Quick test_bracket_scan;
          QCheck_alcotest.to_alcotest prop_brent_in_bounds;
          Alcotest.test_case "degenerate interval counts" `Quick
            test_brent_degenerate_counts;
          Alcotest.test_case "evaluation accounting" `Quick
            test_brent_eval_accounting;
          Alcotest.test_case "max_iter bounds iterations" `Quick
            test_brent_max_iter_bounds_iterations;
          Alcotest.test_case "golden evaluation accounting" `Quick
            test_golden_eval_accounting;
        ] );
      ( "powell",
        [
          Alcotest.test_case "separable quadratic" `Quick test_powell_quadratic;
          Alcotest.test_case "coupled quadratic" `Quick test_powell_coupled;
          Alcotest.test_case "boundary optimum" `Quick test_powell_boundary;
          Alcotest.test_case "scan escapes local minima" `Quick test_powell_scan;
          Alcotest.test_case "line range" `Quick test_line_range;
          QCheck_alcotest.to_alcotest prop_powell_in_box;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_uniform_in_range;
          Alcotest.test_case "of_key fingerprints" `Quick
            test_of_key_fingerprints;
          Alcotest.test_case "of_key stable" `Quick
            test_of_key_stable_across_instances;
          QCheck_alcotest.to_alcotest prop_of_key_pairwise_independent;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
          QCheck_alcotest.to_alcotest prop_crc32_split_anywhere;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats_basic;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
          Alcotest.test_case "linear regression" `Quick test_linreg;
        ] );
    ]
