(* Unit and property tests for the circuit simulator substrate. *)

open Circuit

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------------------------------------------------------- Units *)

let test_units_format () =
  Alcotest.(check string) "10k" "10k" (Units.format_eng 10e3);
  Alcotest.(check string) "25u" "25u" (Units.format_eng 25e-6);
  Alcotest.(check string) "2n" "2n" (Units.format_eng 2e-9);
  Alcotest.(check string) "zero" "0" (Units.format_eng 0.);
  Alcotest.(check string) "negative" "-5m" (Units.format_eng (-5e-3));
  Alcotest.(check string) "with unit" "100kOhm"
    (Units.format_eng ~unit_symbol:"Ohm" 100e3)

let test_units_parse () =
  let p s = Units.parse_eng s in
  Alcotest.(check (option (float 1e-12))) "10k" (Some 10e3) (p "10k");
  Alcotest.(check (option (float 1e-12))) "2.5u" (Some 2.5e-6) (p "2.5u");
  Alcotest.(check (option (float 1e-9))) "100meg" (Some 100e6) (p "100meg");
  Alcotest.(check (option (float 1e-12))) "plain" (Some 42.) (p "42");
  Alcotest.(check (option (float 1e-12))) "exponent" (Some 1.5e3) (p "1.5e3");
  Alcotest.(check (option (float 1e-12))) "bad" None (p "abc");
  Alcotest.(check (option (float 1e-12))) "empty" None (p "")

let test_units_roundtrip () =
  List.iter
    (fun v ->
      match Units.parse_eng (Units.format_eng v) with
      | Some v' -> check_float ~eps:1e-3 "roundtrip" v v'
      | None -> Alcotest.fail "roundtrip parse failed")
    [ 1.; 10e3; 25e-6; 4.7e-9; 100e6; 3.3 ]

(* ------------------------------------------------------------- Waveform *)

let test_waveform_dc () =
  check_float "dc" 5. (Waveform.value (Waveform.Dc 5.) 123.);
  check_float "dc_value" 5. (Waveform.dc_value (Waveform.Dc 5.))

let test_waveform_step () =
  let w = Waveform.Step { base = 1.; elev = 2.; delay = 1e-6; rise = 1e-6 } in
  check_float "before" 1. (Waveform.value w 0.);
  check_float "mid-ramp" 2. (Waveform.value w 1.5e-6);
  check_float "after" 3. (Waveform.value w 5e-6);
  check_float "ideal step" 3.
    (Waveform.value (Waveform.Step { base = 1.; elev = 2.; delay = 0.; rise = 0. }) 1e-9)

let test_waveform_sine () =
  let w = Waveform.Sine { offset = 1.; ampl = 2.; freq = 1e3; phase = 0. } in
  check_float "at 0" 1. (Waveform.value w 0.);
  check_float "quarter period" 3. (Waveform.value w 0.25e-3);
  check_float "dc is offset" 1. (Waveform.dc_value w)

let test_waveform_pwl () =
  let w = Waveform.Pwl [ (0., 0.); (1., 10.); (2., 10.); (3., 0.) ] in
  check_float "before" 0. (Waveform.value w (-1.));
  check_float "interp" 5. (Waveform.value w 0.5);
  check_float "flat" 10. (Waveform.value w 1.5);
  check_float "after" 0. (Waveform.value w 99.)

let test_waveform_validate () =
  let bad = Waveform.Sine { offset = 0.; ampl = 1.; freq = 0.; phase = 0. } in
  Alcotest.(check bool) "zero freq rejected" true
    (Result.is_error (Waveform.validate bad));
  let bad_pwl = Waveform.Pwl [ (1., 0.); (0., 1.) ] in
  Alcotest.(check bool) "unsorted pwl rejected" true
    (Result.is_error (Waveform.validate bad_pwl));
  Alcotest.(check bool) "good step ok" true
    (Result.is_ok
       (Waveform.validate
          (Waveform.Step { base = 0.; elev = 1.; delay = 0.; rise = 0. })))

(* ------------------------------------------------------------ Mos_model *)

let nmos = Mos_model.nmos_default
let pmos = Mos_model.pmos_default

let test_mos_cutoff () =
  let op = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:0.3 ~vd:2. ~vs:0. in
  check_float "cutoff current" 0. op.Mos_model.ids;
  Alcotest.(check bool) "region" true (op.Mos_model.region = `Cutoff)

let test_mos_saturation () =
  (* vgs = 1.2, vt = 0.7, vds = 3 > vgst: saturation
     id = kp/2 * W/L * vgst^2 * (1 + lambda vds) *)
  let op = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:1.2 ~vd:3. ~vs:0. in
  let expected = 0.5 *. 120e-6 *. 10. *. 0.25 *. (1. +. (0.05 *. 3.)) in
  check_float ~eps:1e-9 "sat current" expected op.Mos_model.ids;
  Alcotest.(check bool) "region" true (op.Mos_model.region = `Saturation)

let test_mos_triode () =
  let op = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:2. ~vd:0.2 ~vs:0. in
  let vgst = 1.3 and vds = 0.2 in
  let expected =
    120e-6 *. 10. *. ((vgst *. vds) -. (0.5 *. vds *. vds)) *. (1. +. (0.05 *. vds))
  in
  check_float ~eps:1e-9 "triode current" expected op.Mos_model.ids;
  Alcotest.(check bool) "region" true (op.Mos_model.region = `Triode)

let test_mos_swap_antisymmetry () =
  (* reversing drain and source must negate the channel current *)
  let a = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:2. ~vd:0.5 ~vs:1.5 in
  let b = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:2. ~vd:1.5 ~vs:0.5 in
  check_float "antisymmetric" (-.b.Mos_model.ids) a.Mos_model.ids

let test_mos_pmos_sign () =
  (* conducting PMOS: source at 5, gate low -> current flows source->drain,
     i.e. ids (drain to source) is negative *)
  let op = Mos_model.eval pmos ~w:10e-6 ~l:1e-6 ~vg:3.5 ~vd:2. ~vs:5. in
  Alcotest.(check bool) "pmos conducts with ids < 0" true (op.Mos_model.ids < 0.);
  let off = Mos_model.eval pmos ~w:10e-6 ~l:1e-6 ~vg:5. ~vd:2. ~vs:5. in
  check_float "pmos off" 0. off.Mos_model.ids

let test_mos_continuity_at_pinchoff () =
  (* current and gm continuous across the triode/saturation boundary *)
  let vgst = 0.8 in
  let below = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:(0.7 +. vgst)
      ~vd:(vgst -. 1e-9) ~vs:0. in
  let above = Mos_model.eval nmos ~w:10e-6 ~l:1e-6 ~vg:(0.7 +. vgst)
      ~vd:(vgst +. 1e-9) ~vs:0. in
  check_float ~eps:1e-6 "ids continuous" below.Mos_model.ids above.Mos_model.ids;
  check_float ~eps:1e-4 "gm continuous" below.Mos_model.d_gate above.Mos_model.d_gate

let prop_mos_derivatives =
  QCheck.Test.make ~name:"mos partials match finite differences" ~count:200
    QCheck.(triple (float_range (-1.) 6.) (float_range (-1.) 6.) (float_range (-1.) 6.))
    (fun (vg, vd, vs) ->
      let model = if vg > 2.5 then nmos else pmos in
      let h = 1e-7 in
      let ids v_g v_d v_s =
        (Mos_model.eval model ~w:10e-6 ~l:1e-6 ~vg:v_g ~vd:v_d ~vs:v_s).Mos_model.ids
      in
      let op = Mos_model.eval model ~w:10e-6 ~l:1e-6 ~vg ~vd ~vs in
      let fd_g = (ids (vg +. h) vd vs -. ids (vg -. h) vd vs) /. (2. *. h) in
      let fd_d = (ids vg (vd +. h) vs -. ids vg (vd -. h) vs) /. (2. *. h) in
      let fd_s = (ids vg vd (vs +. h) -. ids vg vd (vs -. h)) /. (2. *. h) in
      let close a b = Float.abs (a -. b) <= 1e-4 *. (1e-4 +. Float.abs b) +. 1e-9 in
      (* skip points straddling a region boundary where the derivative jumps *)
      let regions_consistent =
        let r v_g v_d v_s =
          (Mos_model.eval model ~w:10e-6 ~l:1e-6 ~vg:v_g ~vd:v_d ~vs:v_s).Mos_model.region
        in
        r (vg +. h) vd vs = r (vg -. h) vd vs
        && r vg (vd +. h) vs = r vg (vd -. h) vs
        && r vg vd (vs +. h) = r vg vd (vs -. h)
        && (vd -. vs) *. (vd +. h -. vs) > 0.  (* not at the swap point *)
      in
      QCheck.assume regions_consistent;
      close fd_g op.Mos_model.d_gate
      && close fd_d op.Mos_model.d_drain
      && close fd_s op.Mos_model.d_source)

(* -------------------------------------------------------------- Netlist *)

let r name a b ohms = Device.Resistor { name; a; b; ohms }

let test_netlist_basic () =
  let nl = Netlist.empty ~title:"t" in
  let nl = Netlist.add nl (r "r1" "a" "0" 100.) in
  let nl = Netlist.add nl (r "r2" "a" "b" 100.) in
  Alcotest.(check int) "count" 2 (Netlist.device_count nl);
  Alcotest.(check (list string)) "nodes" [ "a"; "b" ] (Netlist.nodes nl);
  Alcotest.(check (list string)) "all nodes" [ "0"; "a"; "b" ]
    (Netlist.all_nodes nl);
  Alcotest.(check bool) "mem" true (Netlist.mem nl "r1");
  let nl2 = Netlist.remove nl "r1" in
  Alcotest.(check int) "after remove" 1 (Netlist.device_count nl2)

let test_netlist_duplicate () =
  let nl = Netlist.add (Netlist.empty ~title:"t") (r "r1" "a" "0" 1.) in
  (try
     ignore (Netlist.add nl (r "r1" "b" "0" 1.));
     Alcotest.fail "expected duplicate rejection"
   with Invalid_argument _ -> ())

let test_netlist_invalid_device () =
  (try
     ignore (Netlist.add (Netlist.empty ~title:"t") (r "r1" "a" "0" (-5.)));
     Alcotest.fail "expected validation failure"
   with Invalid_argument _ -> ())

let test_netlist_replace () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"t")
      [ r "r1" "a" "0" 1.; r "r2" "a" "0" 2. ]
  in
  let nl = Netlist.replace nl "r1" [ r "r1a" "a" "x" 1.; r "r1b" "x" "0" 1. ] in
  Alcotest.(check int) "count" 3 (Netlist.device_count nl);
  Alcotest.(check bool) "old gone" false (Netlist.mem nl "r1")

let test_netlist_fresh_names () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"t")
      [ r "x1" "a" "0" 1.; r "r1" "n1" "0" 1.; r "r2" "n1" "a" 1. ]
  in
  Alcotest.(check string) "fresh node skips n1" "n2"
    (Netlist.fresh_node nl ~prefix:"n");
  Alcotest.(check string) "fresh device" "x2"
    (Netlist.fresh_device_name nl ~prefix:"x")

let test_connectivity () =
  let dangling =
    Netlist.add_all (Netlist.empty ~title:"t")
      [ r "r1" "a" "0" 1.; r "r2" "a" "hang" 1. ]
  in
  Alcotest.(check bool) "dangling rejected" true
    (Result.is_error (Netlist.connectivity_check dangling));
  let no_ground =
    Netlist.add_all (Netlist.empty ~title:"t")
      [ r "r1" "a" "b" 1.; r "r2" "a" "b" 1. ]
  in
  Alcotest.(check bool) "no ground rejected" true
    (Result.is_error (Netlist.connectivity_check no_ground))

let test_spice_output () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"deck")
      [ r "r1" "a" "0" 10e3;
        Device.Vsource { name = "v1"; plus = "a"; minus = "0"; wave = Waveform.Dc 5. } ]
  in
  let s = Netlist.to_spice nl in
  Alcotest.(check bool) "title" true
    (String.length s > 6 && String.sub s 0 6 = "* deck");
  Alcotest.(check bool) "has resistor" true
    (contains s "Rr1 a 0 10k");
  Alcotest.(check bool) "has .end" true (contains s ".end")

(* ---------------------------------------------------------------- DC/MNA *)

let divider v r1 r2 =
  Netlist.add_all (Netlist.empty ~title:"divider")
    [
      Device.Vsource { name = "vin"; plus = "top"; minus = "0"; wave = Waveform.Dc v };
      r "r1" "top" "mid" r1;
      r "r2" "mid" "0" r2;
    ]

let test_dc_divider () =
  let sys = Mna.build (divider 10. 1e3 3e3) in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "mid" 7.5 (Mna.voltage sys x "mid");
  check_float ~eps:1e-6 "top" 10. (Mna.voltage sys x "top");
  (* branch current flows from + through the source: i = -10/4k *)
  check_float ~eps:1e-6 "source current" (-2.5e-3)
    (Mna.branch_current sys x "vin")

let test_dc_isource () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"i")
      [
        Device.Isource { name = "i1"; from_node = "0"; to_node = "n"; wave = Waveform.Dc 1e-3 };
        r "r1" "n" "0" 2e3;
      ]
  in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "v = i*r" 2. (Mna.voltage sys x "n")

let test_dc_vccs () =
  (* vccs converts v(a) = 1 V into 2 mA through a 1k load: v(out) = -2 V
     (current from out to ground through the source means out is pulled) *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"g")
      [
        Device.Vsource { name = "vin"; plus = "a"; minus = "0"; wave = Waveform.Dc 1. };
        Device.Vccs { name = "g1"; plus = "out"; minus = "0"; ctrl_plus = "a";
                      ctrl_minus = "0"; gm = 2e-3 };
        r "rl" "out" "0" 1e3;
        r "ra" "a" "0" 1e6;
      ]
  in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "vccs output" (-2.) (Mna.voltage sys x "out")

let test_dc_vcvs () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"e")
      [
        Device.Vsource { name = "vin"; plus = "a"; minus = "0"; wave = Waveform.Dc 0.5 };
        Device.Vcvs { name = "e1"; plus = "out"; minus = "0"; ctrl_plus = "a";
                      ctrl_minus = "0"; gain = 10. };
        r "rl" "out" "0" 1e3;
        r "ra" "a" "0" 1e6;
      ]
  in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "vcvs output" 5. (Mna.voltage sys x "out")

let test_dc_inductor_short () =
  (* in DC an inductor is a short: divider collapses *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"l")
      [
        Device.Vsource { name = "v"; plus = "a"; minus = "0"; wave = Waveform.Dc 3. };
        Device.Inductor { name = "l1"; a = "a"; b = "b"; henries = 1e-3 };
        r "r1" "b" "0" 1e3;
      ]
  in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "short" 3. (Mna.voltage sys x "b");
  check_float ~eps:1e-6 "current" 3e-3 (Mna.branch_current sys x "l1")

let test_dc_nmos_inverter () =
  (* resistor-loaded NMOS: analytic solution checked in closed form *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"inv")
      [
        Device.Vsource { name = "vdd"; plus = "vdd"; minus = "0"; wave = Waveform.Dc 5. };
        Device.Vsource { name = "vg"; plus = "g"; minus = "0"; wave = Waveform.Dc 1.2 };
        r "rd" "vdd" "d" 10e3;
        Device.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "0";
                        model = nmos; w = 10e-6; l = 1e-6 };
      ]
  in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  (* vd (1 + 10k*beta/2*vgst^2*lambda) = 5 - 10k*beta/2*vgst^2 *)
  check_float ~eps:1e-4 "drain voltage" 3.255813953 (Mna.voltage sys x "d")

let test_dc_gmin_stepping_path () =
  (* starve Newton of iterations so the direct attempt fails and the
     homotopy fallback has to finish the job *)
  let nl = Macros.Iv_converter.build Macros.Process.nominal in
  let sys = Mna.build nl in
  let options = { Dc.default_options with Dc.max_newton = 14 } in
  let report = Dc.solve ~options sys ~time:`Dc in
  Alcotest.(check bool) "homotopy used" true (report.Dc.gmin_steps > 0);
  check_float ~eps:1e-3 "same operating point" 2.4997
    (Mna.voltage sys report.Dc.solution "vout")

(* ------------------------------------------- DC rank-1 continuation *)

let test_mna_impact_site () =
  let sys = Mna.build (divider 10. 1e3 3e3) in
  let idx name = Option.get (Mna.node_index sys name) in
  (match Mna.impact_site sys "r1" with
  | Some (i, j) ->
      let expect = [ idx "top"; idx "mid" ] in
      Alcotest.(check bool) "r1 terminals" true
        (List.sort compare [ i; j ] = List.sort compare expect)
  | None -> Alcotest.fail "r1 should have an impact site");
  (match Mna.impact_site sys "r2" with
  | Some (i, j) ->
      (* grounded terminal carries index -1 *)
      Alcotest.(check bool) "r2 terminals" true
        (List.sort compare [ i; j ] = List.sort compare [ idx "mid"; -1 ])
  | None -> Alcotest.fail "r2 should have an impact site");
  Alcotest.(check bool) "unknown device" true
    (Mna.impact_site sys "nope" = None);
  Alcotest.(check bool) "vsource is not a resistor" true
    (Mna.impact_site sys "vin" = None)

let test_mna_impact_rank1 () =
  let sys = Mna.build (divider 10. 1e3 3e3) in
  (match Mna.impact_rank1 sys ~device:"r1" ~r_from:1e3 ~r_to:4e3 with
  | Some r1 ->
      check_float ~eps:1e-15 "dg = 1/r_to - 1/r_from"
        ((1. /. 4e3) -. (1. /. 1e3))
        r1.Mna.r1_dg;
      let u = Array.make (Mna.size sys) Float.nan in
      Mna.rank1_direction sys r1 u;
      let idx name = Option.get (Mna.node_index sys name) in
      check_float ~eps:0. "u at top" 1. u.(idx "top");
      check_float ~eps:0. "u at mid" (-1.) u.(idx "mid");
      Array.iteri
        (fun k uk ->
          if k <> idx "top" && k <> idx "mid" then
            check_float ~eps:0. "u elsewhere" 0. uk)
        u
  | None -> Alcotest.fail "r1 should have a rank-1 view");
  match Mna.impact_rank1 sys ~device:"vin" ~r_from:1e3 ~r_to:2e3 with
  | None -> ()
  | Some _ -> Alcotest.fail "vsource must have no rank-1 view"

(* the nonlinear inverter with a restamped load resistor: the ladder of
   load values plays the role of the fault-impact ladder *)
let inverter_nl () =
  Netlist.add_all (Netlist.empty ~title:"inv")
    [
      Device.Vsource { name = "vdd"; plus = "vdd"; minus = "0"; wave = Waveform.Dc 5. };
      Device.Vsource { name = "vg"; plus = "g"; minus = "0"; wave = Waveform.Dc 1.2 };
      r "rd" "vdd" "d" 10e3;
      Device.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "0";
                      model = nmos; w = 10e-6; l = 1e-6 };
    ]

let test_dc_continuation_warm_start () =
  let sys = Mna.build (inverter_nl ()) in
  let ws = Mna.workspace sys in
  let ct = Dc.continuation sys in
  let solve_at ?continuation r =
    let restamp = { Mna.stimulus = None; impact = Some ("rd", r) } in
    Dc.solve ~workspace:ws ~restamp ?continuation sys ~time:`Dc
  in
  let cold1 = solve_at 10e3 in
  let warm1 = solve_at ~continuation:ct 10e3 in
  check_float ~eps:1e-9 "first continuation solve matches cold"
    (Mna.voltage sys cold1.Dc.solution "d")
    (Mna.voltage sys warm1.Dc.solution "d");
  (* second ladder level: warm start plus rank-1 first step *)
  let cold2 = solve_at 8e3 in
  let warm2 = solve_at ~continuation:ct 8e3 in
  check_float ~eps:1e-6 "warm solution matches cold"
    (Mna.voltage sys cold2.Dc.solution "d")
    (Mna.voltage sys warm2.Dc.solution "d");
  Alcotest.(check bool) "warm start saves iterations" true
    (warm2.Dc.newton_iterations <= cold2.Dc.newton_iterations);
  Alcotest.(check bool) "rank-1 first step skipped a factorization" true
    (warm2.Dc.factorizations < warm2.Dc.newton_iterations);
  (* a large jump down the ladder still lands on the cold solution *)
  let cold3 = solve_at 100. in
  let warm3 = solve_at ~continuation:ct 100. in
  check_float ~eps:1e-6 "large jump matches cold"
    (Mna.voltage sys cold3.Dc.solution "d")
    (Mna.voltage sys warm3.Dc.solution "d")

let test_dc_continuation_ladder_parity () =
  let sys = Mna.build (inverter_nl ()) in
  let ws = Mna.workspace sys in
  let ct = Dc.continuation sys in
  let ladder = [ 10e3; 12e3; 15e3; 9e3; 5e3; 2e3; 20e3 ] in
  List.iter
    (fun r ->
      let restamp = { Mna.stimulus = None; impact = Some ("rd", r) } in
      let cold = Dc.solve ~workspace:ws ~restamp sys ~time:`Dc in
      let warm =
        Dc.solve ~workspace:ws ~restamp ~continuation:ct sys ~time:`Dc
      in
      check_float ~eps:1e-6
        (Printf.sprintf "ladder r=%g" r)
        (Mna.voltage sys cold.Dc.solution "d")
        (Mna.voltage sys warm.Dc.solution "d"))
    ladder

let test_dc_continuation_size_mismatch () =
  let sys = Mna.build (inverter_nl ()) in
  let other = Mna.build (divider 10. 1e3 3e3) in
  let ct = Dc.continuation other in
  match Dc.solve ~continuation:ct sys ~time:`Dc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on continuation mismatch"

let test_tran_trapezoidal_inductor () =
  (* RL step response under trapezoidal integration *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"rl")
      [
        Device.Vsource
          { name = "v"; plus = "in"; minus = "0";
            wave = Waveform.Step { base = 0.; elev = 1.; delay = 0.; rise = 0. } };
        r "r1" "in" "mid" 1e3;
        Device.Inductor { name = "l1"; a = "mid"; b = "0"; henries = 1. };
      ]
  in
  let sys = Mna.build nl in
  let result =
    Tran.simulate ~method_:Tran.Trapezoidal sys ~tstop:3e-3 ~dt:5e-6
      ~observe:[ "mid" ]
  in
  let v = Tran.probe_values result "mid" in
  check_float ~eps:2e-2 "v(mid) at tau" (exp (-1.)) v.(200)

let test_dc_guess_dimension () =
  let sys = Mna.build (divider 1. 1e3 1e3) in
  (try
     ignore (Dc.solve ~guess:[| 0. |] sys ~time:`Dc);
     Alcotest.fail "expected dimension rejection"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------- Transient *)

let test_tran_rc_charge () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"rc")
      [
        Device.Vsource
          { name = "v"; plus = "in"; minus = "0";
            wave = Waveform.Step { base = 0.; elev = 1.; delay = 0.; rise = 0. } };
        r "r1" "in" "out" 1e3;
        Device.Capacitor { name = "c1"; a = "out"; b = "0"; farads = 1e-6 };
      ]
  in
  let sys = Mna.build nl in
  let result = Tran.simulate sys ~tstop:5e-3 ~dt:5e-6 ~observe:[ "out" ] in
  let v = Tran.probe_values result "out" in
  let at t = v.(int_of_float (t /. 5e-6)) in
  check_float ~eps:5e-3 "one tau" (1. -. exp (-1.)) (at 1e-3);
  check_float ~eps:5e-3 "two tau" (1. -. exp (-2.)) (at 2e-3);
  Alcotest.(check bool) "starts at 0" true (Float.abs v.(0) < 1e-9)

let test_tran_trapezoidal_accuracy () =
  (* smooth (sine) excitation: trapezoidal's O(h^2) should clearly beat
     backward Euler's O(h).  A discontinuous step would not show this --
     the jump resets both methods to first order. *)
  let freq = 200. in
  let make method_ =
    let nl =
      Netlist.add_all (Netlist.empty ~title:"rc")
        [
          Device.Vsource
            { name = "v"; plus = "in"; minus = "0";
              wave = Waveform.Sine { offset = 0.; ampl = 1.; freq; phase = 0. } };
          r "r1" "in" "out" 1e3;
          Device.Capacitor { name = "c1"; a = "out"; b = "0"; farads = 1e-6 };
        ]
    in
    let sys = Mna.build nl in
    let result =
      Tran.simulate ~method_ sys ~tstop:30e-3 ~dt:1e-4 ~observe:[ "out" ]
    in
    let v = Tran.probe_values result "out" in
    (* steady-state amplitude over the last two periods (100 samples) *)
    let n = Array.length v in
    let lo, hi = Numerics.Stats.min_max (Array.sub v (n - 100) 100) in
    (hi -. lo) /. 2.
  in
  let w = 2. *. Float.pi *. freq in
  let exact = 1. /. sqrt (1. +. ((w *. 1e-3) ** 2.)) in
  let be_err = Float.abs (make Tran.Backward_euler -. exact) in
  let tr_err = Float.abs (make Tran.Trapezoidal -. exact) in
  Alcotest.(check bool)
    (Printf.sprintf "trapezoidal (%.2e) beats BE (%.2e)" tr_err be_err)
    true (tr_err < be_err /. 3.)

let test_tran_rl () =
  (* series RL driven by a step: i(t) = V/R (1 - e^{-tR/L}) *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"rl")
      [
        Device.Vsource
          { name = "v"; plus = "in"; minus = "0";
            wave = Waveform.Step { base = 0.; elev = 1.; delay = 0.; rise = 0. } };
        r "r1" "in" "mid" 1e3;
        Device.Inductor { name = "l1"; a = "mid"; b = "0"; henries = 1. };
      ]
  in
  let sys = Mna.build nl in
  (* tau = L/R = 1 ms; check v(mid) decays like e^{-t/tau} *)
  let result = Tran.simulate sys ~tstop:3e-3 ~dt:5e-6 ~observe:[ "mid" ] in
  let v = Tran.probe_values result "mid" in
  check_float ~eps:1e-2 "v(mid) at tau" (exp (-1.)) v.(200)

let test_tran_sine_amplitude () =
  (* linear RC low-pass far below cutoff passes the sine through *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"sine")
      [
        Device.Vsource
          { name = "v"; plus = "in"; minus = "0";
            wave = Waveform.Sine { offset = 0.; ampl = 1.; freq = 100.; phase = 0. } };
        r "r1" "in" "out" 1e3;
        Device.Capacitor { name = "c1"; a = "out"; b = "0"; farads = 1e-9 };
      ]
  in
  let sys = Mna.build nl in
  let result = Tran.simulate sys ~tstop:0.02 ~dt:1e-5 ~observe:[ "out" ] in
  let v = Tran.probe_values result "out" in
  let lo, hi = Numerics.Stats.min_max (Array.sub v 500 1500) in
  check_float ~eps:2e-2 "amplitude preserved" 2. (hi -. lo)

let test_tran_bad_args () =
  let sys = Mna.build (divider 1. 1e3 1e3) in
  (try
     ignore (Tran.simulate sys ~tstop:0. ~dt:1e-6 ~observe:[]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------- AC *)

let test_ac_rc_lowpass () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"lp")
      [
        Device.Vsource { name = "v"; plus = "in"; minus = "0"; wave = Waveform.Dc 0. };
        r "r1" "in" "out" 1e3;
        Device.Capacitor { name = "c1"; a = "out"; b = "0"; farads = 1e-6 };
      ]
  in
  let sys = Mna.build nl in
  let op = Dc.operating_point sys ~time:`Dc in
  let fc = 1. /. (2. *. Float.pi *. 1e3 *. 1e-6) in
  match Ac.sweep sys ~op ~source:"v" ~freqs:[| fc /. 100.; fc; fc *. 100. |] ~observe:"out" with
  | [ low; cut; high ] ->
      check_float ~eps:1e-3 "passband ~ 0 dB" 0. (Ac.gain_db low.Ac.value);
      check_float ~eps:1e-2 "-3dB at fc" (-3.0103) (Ac.gain_db cut.Ac.value);
      Alcotest.(check bool) "stopband ~ -40dB" true
        (Float.abs (Ac.gain_db high.Ac.value +. 40.) < 0.2);
      check_float ~eps:1e-2 "phase at fc" (-45.) (Ac.phase_deg cut.Ac.value)
  | _ -> Alcotest.fail "expected three points"

let test_ac_rlc_resonance () =
  (* series RLC, output across C: resonance at 1/(2 pi sqrt(LC)) *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"rlc")
      [
        Device.Vsource { name = "v"; plus = "in"; minus = "0"; wave = Waveform.Dc 0. };
        r "r1" "in" "a" 10.;
        Device.Inductor { name = "l1"; a = "a"; b = "b"; henries = 1e-3 };
        Device.Capacitor { name = "c1"; a = "b"; b = "0"; farads = 1e-6 };
      ]
  in
  let sys = Mna.build nl in
  let op = Dc.operating_point sys ~time:`Dc in
  let f0 = 1. /. (2. *. Float.pi *. sqrt (1e-3 *. 1e-6)) in
  (match Ac.sweep sys ~op ~source:"v" ~freqs:[| f0 |] ~observe:"b" with
  | [ peak ] ->
      (* at resonance |H| = Q = sqrt(L/C)/R = 3.162 *)
      check_float ~eps:1e-2 "resonance gain = Q" (sqrt (1e-3 /. 1e-6) /. 10.)
        (Complex.norm peak.Ac.value)
  | _ -> Alcotest.fail "expected one point")

(* ---------------------------------------------------------------- Noise *)

let kt = Noise.boltzmann *. 300.

let test_noise_divider () =
  (* output noise of a resistive divider = 4kT (R1 || R2) *)
  let nl =
    Netlist.add_all (Netlist.empty ~title:"div")
      [
        Device.Vsource { name = "v"; plus = "top"; minus = "0"; wave = Waveform.Dc 1. };
        r "r1" "top" "mid" 10e3;
        r "r2" "mid" "0" 30e3;
      ]
  in
  let sys = Mna.build nl in
  let op = Dc.operating_point sys ~time:`Dc in
  match Noise.output_noise sys ~op ~observe:"mid" ~freqs:[| 1e3 |] with
  | [ p ] ->
      let expected = 4. *. kt *. (10e3 *. 30e3 /. 40e3) in
      check_float ~eps:1e-6 "4kT(R1||R2)" expected p.Noise.total_psd;
      (* the lower resistor sees the same parallel impedance: equal shares
         scale as 1/R -> r1 contributes R2/(R1+R2) of the total *)
      Alcotest.(check int) "two contributors" 2
        (List.length p.Noise.contributions)
  | _ -> Alcotest.fail "one point expected"

let test_noise_ktc () =
  (* integrated output noise of an RC low-pass = sqrt(kT/C), independent
     of R -- the classic sanity check *)
  let make rr cc =
    let nl =
      Netlist.add_all (Netlist.empty ~title:"rc")
        [
          Device.Vsource { name = "v"; plus = "in"; minus = "0"; wave = Waveform.Dc 0. };
          r "r" "in" "out" rr;
          Device.Capacitor { name = "c"; a = "out"; b = "0"; farads = cc };
        ]
    in
    let sys = Mna.build nl in
    let op = Dc.operating_point sys ~time:`Dc in
    let fc = 1. /. (2. *. Float.pi *. rr *. cc) in
    let freqs = Ac.log_space ~lo:(fc /. 1e4) ~hi:(fc *. 1e4) ~points:400 in
    Noise.integrated_rms (Noise.output_noise sys ~op ~observe:"out" ~freqs)
  in
  check_float ~eps:1e-3 "kT/C for 1k/1n" (sqrt (kt /. 1e-9)) (make 1e3 1e-9);
  (* doubling R leaves the integrated noise unchanged *)
  check_float ~eps:2e-3 "kT/C independent of R" (sqrt (kt /. 1e-9))
    (make 2e3 1e-9)

let test_noise_mosfet_contribution () =
  let nl =
    Netlist.add_all (Netlist.empty ~title:"cs")
      [
        Device.Vsource { name = "vdd"; plus = "vdd"; minus = "0"; wave = Waveform.Dc 5. };
        Device.Vsource { name = "vg"; plus = "g"; minus = "0"; wave = Waveform.Dc 1.2 };
        r "rd" "vdd" "d" 10e3;
        Device.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "0";
                        model = nmos; w = 10e-6; l = 1e-6 };
      ]
  in
  let sys = Mna.build nl in
  let op = Dc.operating_point sys ~time:`Dc in
  match Noise.output_noise sys ~op ~observe:"d" ~freqs:[| 1e3 |] with
  | [ p ] ->
      Alcotest.(check bool) "mosfet contributes" true
        (List.exists
           (fun c -> c.Noise.noise_source = "m1" && c.Noise.psd > 0.)
           p.Noise.contributions);
      (* contributions sorted largest first *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Noise.psd >= b.Noise.psd && sorted rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "sorted" true (sorted p.Noise.contributions);
      (* analytic: output PSD = 4kT/Rd Rd^2 + 4kT 2/3 gm Rout^2 with
         Rout = Rd || rds; check within 1 % using the operating point *)
      let mos = List.assoc "m1" (Mna.mosfet_operating_points sys ~x:op) in
      let gds = mos.Mos_model.d_drain and gm = mos.Mos_model.d_gate in
      let rout = 1. /. ((1. /. 10e3) +. gds) in
      let expected =
        (4. *. kt /. 10e3 *. (rout ** 2.))
        +. (4. *. kt *. (2. /. 3.) *. gm *. (rout ** 2.))
      in
      check_float ~eps:1e-2 "analytic total" expected p.Noise.total_psd
  | _ -> Alcotest.fail "one point expected"

let test_noise_integrated_errors () =
  (try
     ignore (Noise.integrated_rms []);
     Alcotest.fail "empty accepted"
   with Invalid_argument _ -> ())

let test_ac_log_space () =
  let fs = Ac.log_space ~lo:1. ~hi:1000. ~points:4 in
  Alcotest.(check int) "count" 4 (Array.length fs);
  check_float "first" 1. fs.(0);
  check_float "second" 10. fs.(1);
  check_float "last" 1000. fs.(3)

let () =
  Alcotest.run "circuit"
    [
      ( "units",
        [
          Alcotest.test_case "format" `Quick test_units_format;
          Alcotest.test_case "parse" `Quick test_units_parse;
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "dc" `Quick test_waveform_dc;
          Alcotest.test_case "step" `Quick test_waveform_step;
          Alcotest.test_case "sine" `Quick test_waveform_sine;
          Alcotest.test_case "pwl" `Quick test_waveform_pwl;
          Alcotest.test_case "validate" `Quick test_waveform_validate;
        ] );
      ( "mos_model",
        [
          Alcotest.test_case "cutoff" `Quick test_mos_cutoff;
          Alcotest.test_case "saturation" `Quick test_mos_saturation;
          Alcotest.test_case "triode" `Quick test_mos_triode;
          Alcotest.test_case "drain/source swap" `Quick test_mos_swap_antisymmetry;
          Alcotest.test_case "pmos polarity" `Quick test_mos_pmos_sign;
          Alcotest.test_case "pinchoff continuity" `Quick test_mos_continuity_at_pinchoff;
          QCheck_alcotest.to_alcotest prop_mos_derivatives;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "basics" `Quick test_netlist_basic;
          Alcotest.test_case "duplicate name" `Quick test_netlist_duplicate;
          Alcotest.test_case "invalid device" `Quick test_netlist_invalid_device;
          Alcotest.test_case "replace" `Quick test_netlist_replace;
          Alcotest.test_case "fresh names" `Quick test_netlist_fresh_names;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "spice output" `Quick test_spice_output;
        ] );
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_dc_divider;
          Alcotest.test_case "current source" `Quick test_dc_isource;
          Alcotest.test_case "vccs" `Quick test_dc_vccs;
          Alcotest.test_case "vcvs" `Quick test_dc_vcvs;
          Alcotest.test_case "inductor short" `Quick test_dc_inductor_short;
          Alcotest.test_case "nmos inverter" `Quick test_dc_nmos_inverter;
          Alcotest.test_case "guess dimension" `Quick test_dc_guess_dimension;
          Alcotest.test_case "gmin stepping path" `Quick test_dc_gmin_stepping_path;
          Alcotest.test_case "impact site" `Quick test_mna_impact_site;
          Alcotest.test_case "impact rank-1 view" `Quick test_mna_impact_rank1;
          Alcotest.test_case "continuation warm start" `Quick
            test_dc_continuation_warm_start;
          Alcotest.test_case "continuation ladder parity" `Quick
            test_dc_continuation_ladder_parity;
          Alcotest.test_case "continuation size mismatch" `Quick
            test_dc_continuation_size_mismatch;
        ] );
      ( "tran",
        [
          Alcotest.test_case "rc charge" `Quick test_tran_rc_charge;
          Alcotest.test_case "trapezoidal accuracy" `Quick test_tran_trapezoidal_accuracy;
          Alcotest.test_case "rl time constant" `Quick test_tran_rl;
          Alcotest.test_case "trapezoidal inductor" `Quick test_tran_trapezoidal_inductor;
          Alcotest.test_case "sine through" `Quick test_tran_sine_amplitude;
          Alcotest.test_case "bad args" `Quick test_tran_bad_args;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc lowpass" `Quick test_ac_rc_lowpass;
          Alcotest.test_case "rlc resonance" `Quick test_ac_rlc_resonance;
          Alcotest.test_case "log space" `Quick test_ac_log_space;
        ] );
      ( "noise",
        [
          Alcotest.test_case "divider 4kT(R1||R2)" `Quick test_noise_divider;
          Alcotest.test_case "kT/C" `Quick test_noise_ktc;
          Alcotest.test_case "mosfet channel noise" `Quick test_noise_mosfet_contribution;
          Alcotest.test_case "integration errors" `Quick test_noise_integrated_errors;
        ] );
    ]
