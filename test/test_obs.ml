(* Observability contract: counter fork/absorb is a commutative merge,
   aggregate counters are identical between sequential and --jobs N runs
   (tracing isolates each fault on run-start evaluator forks), and the
   JSONL trace is schema-valid and identical across job counts modulo
   elapsed-time fields. *)

open Testgen

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let fresh_dc_evaluator () =
  let config = Experiments.Iv_configs.config1 in
  Evaluator.create config ~nominal:iv_target
    ~box_model:(Tolerance.floor_only config)

let small_faults =
  [
    Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
    Faults.Fault.bridge "n2" "vout" ~resistance:10e3;
    Faults.Fault.bridge "iin" "n1" ~resistance:10e3;
    Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
    Faults.Fault.pinhole "m6" ~r_shunt:2e3;
  ]

let small_dictionary = Faults.Dictionary.of_faults small_faults

let executor_of jobs =
  if jobs <= 1 then Engine.sequential else Parallel.executor ~jobs

(* ------------------------------------------------ counter primitives *)

let test_counter_basics () =
  let c = Obs.Counter.unregistered "t.basics" in
  Alcotest.(check int) "zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c);
  let r1 = Obs.Counter.create "t.registered" in
  let r2 = Obs.Counter.create "t.registered" in
  Obs.Counter.add r1 3;
  Alcotest.(check int) "create is idempotent per name" 3 (Obs.Counter.value r2);
  Obs.Counter.reset r1

let test_bump_respects_enabled () =
  let c = Obs.Counter.unregistered "t.bump" in
  Alcotest.(check bool) "tracing off by default" false (Obs.active ());
  Obs.Counter.bump c 7;
  Alcotest.(check int) "bump is a no-op when disabled" 0 (Obs.Counter.value c);
  Obs.enable ();
  Obs.Counter.bump c 7;
  Obs.shutdown ();
  Alcotest.(check int) "bump counts when enabled" 7 (Obs.Counter.value c)

(* Absorbing any permutation of forks, each carrying an arbitrary share
   of increments, yields the same parent total. *)
let prop_fork_absorb_commutes =
  QCheck.Test.make ~name:"fork/absorb is permutation-invariant" ~count:200
    QCheck.(pair (list (int_range 0 50)) int)
    (fun (shares, seed) ->
      let total_of order =
        let parent = Obs.Counter.unregistered "t.absorb" in
        let forks =
          List.map
            (fun n ->
              let f = Obs.Counter.fork parent in
              Obs.Counter.add f n;
              f)
            order
        in
        List.iter (fun f -> Obs.Counter.absorb ~into:parent f) forks;
        Obs.Counter.value parent
      in
      (* a deterministic pseudo-shuffle driven by the generated seed *)
      let shuffled =
        let tagged =
          List.mapi (fun i x -> ((i * 2654435761) lxor seed, x)) shares
        in
        List.map snd (List.sort compare tagged)
      in
      total_of shares = total_of shuffled
      && total_of shares = List.fold_left ( + ) 0 shares)

let test_absorb_self_noop () =
  let c = Obs.Counter.unregistered "t.self" in
  Obs.Counter.add c 5;
  Obs.Counter.absorb ~into:c c;
  Alcotest.(check int) "self-absorb is a no-op" 5 (Obs.Counter.value c)

let test_histogram_buckets () =
  Obs.enable ();
  let h = Obs.Histogram.create "t.hist" ~bounds:[| 2; 4; 8 |] in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 4; 5; 8; 9; 100 ];
  Obs.shutdown ();
  Alcotest.(check (list (pair string int)))
    "bucket counts"
    [ ("<=2", 3); ("<=4", 2); ("<=8", 2); (">8", 2) ]
    (Obs.Histogram.counts h)

(* ------------------------------------------------------ span capture *)

let test_span_depth_and_aggregate () =
  Obs.enable ();
  let v =
    Obs.Span.timed "t.outer" (fun () ->
        Obs.Span.timed "t.inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "span returns the body's value" 42 v;
  (match
     List.filter
       (fun s -> String.length s.Obs.span_name > 2 && String.sub s.Obs.span_name 0 2 = "t.")
       (Obs.span_stats ())
   with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner name" "t.inner" inner.Obs.span_name;
      Alcotest.(check int) "inner count" 1 inner.Obs.span_count;
      Alcotest.(check string) "outer name" "t.outer" outer.Obs.span_name;
      Alcotest.(check int) "outer count" 1 outer.Obs.span_count
  | other ->
      Alcotest.failf "expected 2 span stats, got %d" (List.length other));
  Obs.shutdown ()

let test_span_records_exceptions () =
  Obs.enable ();
  (match Obs.Span.timed "t.raising" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure m -> Alcotest.(check string) "reraised" "boom" m);
  let stat =
    List.find
      (fun s -> String.equal s.Obs.span_name "t.raising")
      (Obs.span_stats ())
  in
  Alcotest.(check int) "err span still recorded" 1 stat.Obs.span_count;
  Obs.shutdown ()

let test_disabled_paths_are_noops () =
  Alcotest.(check bool) "inactive" false (Obs.active ());
  let v = Obs.Span.timed "t.off" (fun () -> 7) in
  Alcotest.(check int) "span is identity when off" 7 v;
  let x, events = Obs.Task.collect (fun () -> 11) in
  Alcotest.(check int) "collect is identity when off" 11 x;
  Obs.Task.flush events;
  Alcotest.(check bool) "no t.off span recorded" true
    (List.for_all
       (fun s -> not (String.equal s.Obs.span_name "t.off"))
       (Obs.span_stats ()))

(* --------------------------------------- engine counter determinism *)

let run_with_counters jobs =
  Obs.enable ();
  let run =
    Engine.run ~executor:(executor_of jobs)
      ~evaluators:[ fresh_dc_evaluator () ]
      small_dictionary
  in
  let counters = Obs.counters () in
  let histograms = Obs.histograms () in
  Obs.shutdown ();
  (run, counters, histograms)

let test_counters_match_across_jobs () =
  let _, ref_counters, ref_histograms = run_with_counters 1 in
  Alcotest.(check bool)
    "reference run produced solver counters" true
    (match List.assoc_opt "solver.dc.solves" ref_counters with
    | Some n -> n > 0
    | None -> false);
  List.iter
    (fun jobs ->
      let _, counters, histograms = run_with_counters jobs in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counters at jobs=%d equal sequential" jobs)
        ref_counters counters;
      Alcotest.(check
                  (list (pair string (list (pair string int)))))
        (Printf.sprintf "histograms at jobs=%d equal sequential" jobs)
        ref_histograms histograms)
    [ 2; 4 ]

(* A continuation ladder must show up in the solver counters: the warm
   levels take rank-1 first steps (rank1_solves) and converge in fewer
   Newton iterations than the cold baseline (warm_start_iters_saved).
   The conditioning-guard fallback counter is registered either way. *)
let test_continuation_counters () =
  Obs.enable ();
  let config = Experiments.Iv_configs.config1 in
  let ev =
    Evaluator.create ~mode:`Compiled ~continuation:true config
      ~nominal:iv_target ~box_model:(Tolerance.floor_only config)
  in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let values = Test_param.seeds_of config.Test_config.params in
  List.iter
    (fun ohms ->
      ignore
        (Evaluator.sensitivity ~continue:true ev
           (Faults.Fault.with_impact fault ohms)
           values))
    [ 10e3; 12e3; 14.4e3; 17.3e3; 20.7e3; 24.9e3 ];
  let counters = Obs.counters () in
  Obs.shutdown ();
  let get name = Option.value ~default:0 (List.assoc_opt name counters) in
  Alcotest.(check bool) "rank-1 solves recorded" true
    (get "solver.dc.rank1_solves" > 0);
  Alcotest.(check bool) "warm starts saved Newton iterations" true
    (get "solver.dc.warm_start_iters_saved" > 0);
  Alcotest.(check bool) "fallback counter registered" true
    (List.mem_assoc "solver.dc.rank1_fallbacks" counters)

let test_engine_results_unchanged_by_tracing () =
  let plain =
    Engine.run
      ~evaluators:[ fresh_dc_evaluator () ]
      small_dictionary
  in
  let traced, _, _ = run_with_counters 1 in
  Alcotest.(check string) "session bytes identical with tracing on"
    (Session.to_string plain.Engine.results)
    (Session.to_string traced.Engine.results)

(* ------------------------------------------------------- trace files *)

(* Minimal structural validation: every line must be a single flat-ish
   JSON object with balanced braces and an "ev" discriminator.  (No JSON
   parser in the test image; CI additionally parses the trace with
   python3.) *)
let check_jsonl_line line =
  String.length line > 0
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'
  && (let depth = ref 0 and ok = ref true and in_str = ref false in
      let escaped = ref false in
      String.iter
        (fun c ->
          if !escaped then escaped := false
          else if !in_str then begin
            if c = '\\' then escaped := true else if c = '"' then in_str := false
          end
          else
            match c with
            | '"' -> in_str := true
            | '{' -> incr depth
            | '}' ->
                decr depth;
                if !depth < 0 then ok := false
            | _ -> ())
        line;
      !ok && !depth = 0 && not !in_str)
  &&
  let has_prefix p = String.length line >= String.length p
                     && String.sub line 0 (String.length p) = p in
  has_prefix "{\"ev\":\""

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let with_temp_trace f =
  let path = Filename.temp_file "atpg-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let traced_run jobs path =
  Obs.enable ~trace:path ();
  let _ =
    Engine.run ~executor:(executor_of jobs)
      ~evaluators:[ fresh_dc_evaluator () ]
      small_dictionary
  in
  Obs.shutdown ();
  read_lines path

(* Strip the (wall-clock) elapsed_ms field, the only permitted
   difference between job counts. *)
let strip_elapsed line =
  let marker = "\"elapsed_ms\":" in
  let mlen = String.length marker in
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub line !i mlen = marker then begin
      Buffer.add_string buf marker;
      Buffer.add_char buf '_';
      i := !i + mlen;
      while !i < n && (match line.[!i] with '0' .. '9' | '.' -> true | _ -> false) do
        incr i
      done
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_trace_schema_and_determinism () =
  with_temp_trace (fun p1 ->
      with_temp_trace (fun p4 ->
          let l1 = traced_run 1 p1 in
          let l4 = traced_run 4 p4 in
          Alcotest.(check bool) "trace non-empty" true (List.length l1 > 1);
          List.iter
            (fun line ->
              if not (check_jsonl_line line) then
                Alcotest.failf "malformed trace line: %s" line)
            l1;
          (match l1 with
          | meta :: _ ->
              Alcotest.(check string) "meta line first"
                "{\"ev\":\"meta\",\"schema\":\"atpg-trace/1\"}" meta
          | [] -> Alcotest.fail "empty trace");
          Alcotest.(check (list string))
            "jobs=4 trace identical modulo elapsed_ms"
            (List.map strip_elapsed l1)
            (List.map strip_elapsed l4)))

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "bump honours enable" `Quick
            test_bump_respects_enabled;
          QCheck_alcotest.to_alcotest prop_fork_absorb_commutes;
          Alcotest.test_case "self-absorb no-op" `Quick test_absorb_self_noop;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and aggregate" `Quick
            test_span_depth_and_aggregate;
          Alcotest.test_case "exceptions recorded and reraised" `Quick
            test_span_records_exceptions;
          Alcotest.test_case "disabled paths are no-ops" `Quick
            test_disabled_paths_are_noops;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters equal across jobs {1,2,4}" `Slow
            test_counters_match_across_jobs;
          Alcotest.test_case "continuation ladder counters" `Quick
            test_continuation_counters;
          Alcotest.test_case "engine results unchanged by tracing" `Slow
            test_engine_results_unchanged_by_tracing;
          Alcotest.test_case "trace schema + cross-jobs identity" `Slow
            test_trace_schema_and_determinism;
        ] );
    ]
