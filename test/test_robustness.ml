(* Robustness tests: graceful failure modes, tight budgets, hostile
   inputs. *)

open Testgen

(* ------------------------------------------------------ parser resilience *)

let prop_parser_never_raises =
  QCheck.Test.make ~name:"parser returns Ok/Error on arbitrary input, never raises"
    ~count:300
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk ->
      match Circuit.Spice_parser.parse junk with
      | Ok _ | Error _ -> true)

let prop_parser_structured_junk =
  QCheck.Test.make
    ~name:"parser survives structured junk cards" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 1)) in
      let pick l = List.nth l (Numerics.Rng.int rng ~bound:(List.length l)) in
      let card () =
        String.concat " "
          (List.init
             (1 + Numerics.Rng.int rng ~bound:5)
             (fun _ ->
               pick [ "Rx"; "a"; "0"; "10k"; "sine(1,"; ")"; "W=";
                      "=1"; "M1"; ".model"; "+"; "nan"; "-"; "1e999" ]))
      in
      let deck =
        "title\n" ^ String.concat "\n" (List.init 6 (fun _ -> card ()))
      in
      match Circuit.Spice_parser.parse deck with
      | Ok _ | Error _ -> true)

(* --------------------------------------------------------- AC error paths *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let test_ac_nonpositive_frequency () =
  let config =
    Test_config.create ~id:90 ~name:"bad-ac" ~macro_type:"IV-converter"
      ~control_node:"Iin"
      ~params:
        [ Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:1. ~seed:0.5 ]
      ~analysis:
        (Test_config.Ac_gain
           { bias = (fun _ -> Circuit.Waveform.Dc 0.); freq = (fun _ -> 0.) })
      ~returns:Test_config.Per_component
      ~return_names:[ "g"; "p" ]
      ~accuracy_floor:[ 0.1; 1. ]
      ~summary:""
  in
  (try
     ignore (Execute.observables config iv_target [| 0.5 |]);
     Alcotest.fail "zero frequency accepted"
   with Execute.Execution_failure _ -> ())

let test_imd_nyquist_guard () =
  (* products above Nyquist for the chosen profile must fail loudly *)
  let config =
    Test_config.create ~id:91 ~name:"bad-imd" ~macro_type:"IV-converter"
      ~control_node:"Iin"
      ~params:
        [ Test_param.create ~name:"f0" ~units:"Hz" ~lower:1e3 ~upper:1e4 ~seed:2e3 ]
      ~analysis:
        (Test_config.Tran_imd
           {
             stimulus =
               (fun v ->
                 Circuit.Waveform.Multi_sine
                   { offset = 0.; tones = [ (1e-6, 40. *. v.(0)); (1e-6, 41. *. v.(0)) ] });
             base_freq = (fun v -> v.(0));
             k1 = 40;
             k2 = 41;
           })
      ~returns:Test_config.Per_component
      ~return_names:[ "imd" ]
      ~accuracy_floor:[ 0.05 ]
      ~summary:""
  in
  (* fast profile: 64 samples per base period -> Nyquist bin 32 < 42 *)
  (try
     ignore
       (Execute.observables ~profile:Execute.fast_profile config iv_target
          [| 2e3 |]);
     Alcotest.fail "above-Nyquist products accepted"
   with Execute.Execution_failure _ -> ())

(* ----------------------------------------------------- generation budgets *)

let dc_evaluator =
  lazy
    (let config = Experiments.Iv_configs.config1 in
     Evaluator.create config ~nominal:iv_target
       ~box_model:(Tolerance.floor_only config))

let test_generate_tiny_budget () =
  (* an exhausted impact budget must still return a well-formed outcome *)
  let options =
    { Generate.default_options with Generate.max_impact_steps = 2 }
  in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:n1-vout";
      fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
    }
  in
  let r =
    Generate.generate ~options ~evaluators:[ Lazy.force dc_evaluator ] entry
  in
  (match r.Generate.outcome with
  | Generate.Unique { critical_impact; _ } ->
      Alcotest.(check bool) "impact positive" true (critical_impact > 0.)
  | Generate.Undetectable _ -> ());
  Alcotest.(check bool) "trace bounded" true
    (List.length r.Generate.trace <= 8)

let test_generate_narrow_span () =
  (* an impact span of ~1 pins the search at the dictionary value *)
  let options = { Generate.default_options with Generate.impact_span = 1.01 } in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:0-vdd";
      fault = Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
    }
  in
  let r =
    Generate.generate ~options ~evaluators:[ Lazy.force dc_evaluator ] entry
  in
  match r.Generate.outcome with
  | Generate.Undetectable { strongest_impact; _ } ->
      Alcotest.(check bool) "stayed near the dictionary impact" true
        (strongest_impact > 10e3 /. 2.)
  | Generate.Unique _ -> Alcotest.fail "supply bridge cannot be seen at ~10k"

(* -------------------------------------------------------- noise edge cases *)

let test_noise_unknown_node () =
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  (try
     ignore
       (Circuit.Noise.output_noise sys ~op ~observe:"nonexistent"
          ~freqs:[| 1e3 |]);
     Alcotest.fail "unknown node accepted"
   with Not_found -> ())

let test_noise_iv_converter_scale () =
  (* sanity scale: a transimpedance amp with 20k/50k/100k resistors sits in
     the tens of nV/rtHz at the output in the flat band *)
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  match Circuit.Noise.output_noise sys ~op ~observe:"vout" ~freqs:[| 1e3 |] with
  | [ p ] ->
      let nv = 1e9 *. sqrt p.Circuit.Noise.total_psd in
      Alcotest.(check bool)
        (Printf.sprintf "%.1f nV/rtHz plausible" nv)
        true
        (nv > 5. && nv < 500.)
  | _ -> Alcotest.fail "one point"

(* ------------------------------------------------------ failure injection *)

module Fp = Numerics.Failpoint

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let test_failpoint_determinism () =
  let pattern seed =
    Fp.with_failpoints ~seed
      [ { Fp.point = "p"; probability = 0.5; max_triggers = None } ]
      (fun () -> List.init 64 (fun _ -> Fp.should_fail "p"))
  in
  Alcotest.(check bool) "same seed, same pattern" true (pattern 7L = pattern 7L);
  Alcotest.(check bool) "seed changes the pattern" true (pattern 7L <> pattern 8L);
  Alcotest.(check bool) "unconfigured afterwards" false (Fp.should_fail "p")

let test_failpoint_trigger_cap () =
  Fp.with_failpoints [ Fp.fail_always ~max_triggers:3 "q" ] (fun () ->
      let fired = List.init 10 (fun _ -> Fp.should_fail "q") in
      Alcotest.(check (list bool)) "first three queries fire"
        [ true; true; true; false; false; false; false; false; false; false ]
        fired;
      Alcotest.(check int) "queries counted" 10 (Fp.query_count "q");
      Alcotest.(check int) "triggers counted" 3 (Fp.trigger_count "q"))

let iv_system () =
  Circuit.Mna.build (Macros.Macro.nominal_netlist Macros.Iv_converter.macro)

let test_dc_nan_guard () =
  let sys = iv_system () in
  (* every iterate corrupted: the finiteness guard must reject the run as
     non-convergence rather than accept NaN node voltages *)
  Fp.with_failpoints [ Fp.fail_always "dc.nan_solution" ] (fun () ->
      try
        ignore (Circuit.Dc.solve sys ~time:`Dc);
        Alcotest.fail "NaN iterate accepted as an operating point"
      with Circuit.Dc.No_convergence _ -> ());
  (* a single corrupted iterate: the homotopy ladder recovers and the
     accepted solution is finite *)
  Fp.with_failpoints [ Fp.fail_always ~max_triggers:1 "dc.nan_solution" ]
    (fun () ->
      let r = Circuit.Dc.solve sys ~time:`Dc in
      Alcotest.(check bool) "finite solution" true
        (Array.for_all Float.is_finite r.Circuit.Dc.solution))

let test_dc_singular_recovery () =
  let sys = iv_system () in
  let clean = Circuit.Dc.solve sys ~time:`Dc in
  Fp.with_failpoints [ Fp.fail_always ~max_triggers:1 "dc.singular" ] (fun () ->
      let r = Circuit.Dc.solve sys ~time:`Dc in
      Alcotest.(check bool) "homotopy engaged" true
        (r.Circuit.Dc.gmin_steps > 0 || r.Circuit.Dc.source_steps > 0);
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "same operating point" true
            (Float.abs (v -. clean.Circuit.Dc.solution.(i)) < 1e-6))
        r.Circuit.Dc.solution)

let test_tran_step_failure_injection () =
  let sys = iv_system () in
  Fp.with_failpoints [ Fp.fail_always ~max_triggers:1 "tran.step_failure" ]
    (fun () ->
      try
        ignore
          (Circuit.Tran.simulate sys ~tstop:1e-6 ~dt:1e-7 ~observe:[ "vout" ]);
        Alcotest.fail "injected step failure not raised"
      with Circuit.Tran.Step_failure _ -> ())

(* --------------------------------------------------- retry ladder (unit) *)

let rung_labels policy =
  Resilience.baseline_label
  :: List.map (fun r -> r.Resilience.rung_label) policy.Resilience.ladder

let test_protect_ladder_walk () =
  let seen = ref [] in
  let outcome =
    Resilience.protect ~policy:Resilience.default_policy ~fault_id:"f"
      (fun rung ->
        let label =
          match rung with
          | None -> Resilience.baseline_label
          | Some r -> r.Resilience.rung_label
        in
        seen := label :: !seen;
        if List.length !seen < 3 then
          raise (Circuit.Dc.No_convergence "synthetic");
        42)
  in
  Alcotest.(check (list string)) "walked in ladder order"
    [ "baseline"; "more-newton"; "raise-gmin" ]
    (List.rev !seen);
  (match outcome with
  | Resilience.Recovered (v, attempts) ->
      Alcotest.(check int) "value" 42 v;
      Alcotest.(check int) "three attempts" 3 (List.length attempts)
  | _ -> Alcotest.fail "expected a recovery");
  Alcotest.(check (option string)) "winning rung" (Some "raise-gmin")
    (Resilience.recovery_rung outcome)

let test_protect_quarantine_attempts () =
  match
    Resilience.protect ~policy:Resilience.default_policy ~fault_id:"f"
      (fun _ -> raise (Circuit.Dc.No_convergence "synthetic"))
  with
  | Resilience.Failed d ->
      Alcotest.(check (list string)) "baseline plus every rung attempted"
        (rung_labels Resilience.default_policy)
        (List.map
           (fun (a : Resilience.attempt) -> a.Resilience.attempt_rung)
           d.Resilience.diag_attempts)
  | _ -> Alcotest.fail "expected a quarantine"

let test_protect_unrecoverable_propagates () =
  try
    ignore
      (Resilience.protect ~policy:Resilience.default_policy ~fault_id:"f"
         (fun _ -> failwith "programming error"));
    Alcotest.fail "programming error swallowed by the retry ladder"
  with Failure m -> Alcotest.(check string) "propagated" "programming error" m

(* ------------------------------------------------ engine under injection *)

let fresh_dc_evaluator () =
  let config = Experiments.Iv_configs.config1 in
  Evaluator.create config ~nominal:iv_target
    ~box_model:(Tolerance.floor_only config)

let resilience_dictionary =
  Faults.Dictionary.of_faults
    [
      Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
      Faults.Fault.bridge "n2" "vout" ~resistance:10e3;
      Faults.Fault.bridge "iin" "n1" ~resistance:10e3;
      Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
      Faults.Fault.pinhole "m6" ~r_shunt:2e3;
    ]

let dict_size = Faults.Dictionary.size resilience_dictionary

(* clean reference run shared by the checkpoint tests *)
let resilience_run =
  lazy (Engine.run ~evaluators:[ fresh_dc_evaluator () ] resilience_dictionary)

let test_engine_recovers_injected_failures () =
  (* the engine scopes injection per fault, so the trigger cap is a
     per-fault budget: each fault's first three attempts absorb three
     injected DC failures and the fourth rung completes it — every fault
     recovers on the same rung, whatever the execution order *)
  Fp.with_failpoints [ Fp.fail_always ~max_triggers:3 "dc.no_convergence" ]
    (fun () ->
      let run =
        Engine.run ~evaluators:[ fresh_dc_evaluator () ] resilience_dictionary
      in
      Alcotest.(check int) "every fault reported" dict_size
        (List.length run.Engine.reports);
      Alcotest.(check int) "nothing quarantined" 0
        (List.length run.Engine.failed_faults);
      Alcotest.(check int) "every fault produced a result" dict_size
        (List.length run.Engine.results);
      Alcotest.(check int) "every fault needed the ladder" dict_size
        run.Engine.recovered_count;
      Alcotest.(check int) "all recovered on the third rung" dict_size
        (List.assoc "relax-reltol" run.Engine.rung_stats))

let test_engine_quarantines_unrecoverable_faults () =
  (* unlimited injection: every attempt of every fault fails, yet the run
     completes with a diagnosis per fault instead of aborting *)
  Fp.with_failpoints [ Fp.fail_always "dc.no_convergence" ] (fun () ->
      let run =
        Engine.run ~evaluators:[ fresh_dc_evaluator () ] resilience_dictionary
      in
      Alcotest.(check int) "every fault reported" dict_size
        (List.length run.Engine.reports);
      Alcotest.(check int) "every fault quarantined" dict_size
        (List.length run.Engine.failed_faults);
      Alcotest.(check int) "no results" 0 (List.length run.Engine.results);
      List.iter
        (fun (d : Resilience.diagnosis) ->
          Alcotest.(check (list string)) "baseline plus every rung attempted"
            (rung_labels Resilience.default_policy)
            (List.map
               (fun (a : Resilience.attempt) -> a.Resilience.attempt_rung)
               d.Resilience.diag_attempts);
          Alcotest.(check bool) "diagnosis names the injection" true
            (contains d.Resilience.diag_error "injected"))
        run.Engine.failed_faults)

let test_engine_fail_fast () =
  Fp.with_failpoints [ Fp.fail_always "dc.no_convergence" ] (fun () ->
      let policy =
        { Resilience.default_policy with Resilience.fail_fast = true }
      in
      try
        ignore
          (Engine.run ~policy
             ~evaluators:[ fresh_dc_evaluator () ]
             resilience_dictionary);
        Alcotest.fail "fail-fast policy did not abort"
      with Engine.Fault_failure d ->
        Alcotest.(check string) "aborted on the first fault" "bridge:n1-vout"
          d.Resilience.diag_fault_id)

let test_engine_deterministic_under_seed () =
  (* probabilistic injection under a fixed seed: two runs from fresh
     evaluators are indistinguishable, ladder walks included *)
  let run_once () =
    Fp.with_failpoints ~seed:11L
      [ { Fp.point = "dc.no_convergence"; probability = 0.2; max_triggers = Some 6 } ]
      (fun () ->
        Engine.run ~evaluators:[ fresh_dc_evaluator () ] resilience_dictionary)
  in
  let a = run_once () in
  let b = run_once () in
  Alcotest.(check string) "identical surviving results"
    (Session.to_string a.Engine.results)
    (Session.to_string b.Engine.results);
  Alcotest.(check (list (pair string int))) "identical rung statistics"
    a.Engine.rung_stats b.Engine.rung_stats;
  Alcotest.(check int) "identical recovery count" a.Engine.recovered_count
    b.Engine.recovered_count;
  Alcotest.(check (list string)) "identical quarantine list"
    (List.map (fun d -> d.Resilience.diag_fault_id) a.Engine.failed_faults)
    (List.map (fun d -> d.Resilience.diag_fault_id) b.Engine.failed_faults)

let test_attempt_budget_quarantines () =
  (* a 1-evaluation budget cannot finish any attempt: every rung fails with
     Budget_exhausted and the fault is quarantined rather than spinning *)
  let policy =
    { Resilience.default_policy with Resilience.attempt_budget = Some 1 }
  in
  let dict = Faults.Dictionary.take resilience_dictionary 1 in
  let run = Engine.run ~policy ~evaluators:[ fresh_dc_evaluator () ] dict in
  match run.Engine.failed_faults with
  | [ d ] ->
      Alcotest.(check bool) "diagnosis names the budget" true
        (contains d.Resilience.diag_error "budget")
  | _ -> Alcotest.fail "expected exactly one quarantined fault"

(* ---------------------------------------------------- checkpoint / resume *)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let test_checkpoint_resume_bit_for_bit () =
  let reference = Lazy.force resilience_run in
  let expected = Session.to_string reference.Engine.results in
  let path = Filename.temp_file "atpg-resume" ".session" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* phase 1: a run killed after two faults, mid-write of the third *)
      (match Session.checkpoint_create ~path with
      | Error m -> Alcotest.fail m
      | Ok ck ->
          List.iteri
            (fun i r -> if i < 2 then Session.checkpoint_append ck r)
            reference.Engine.results;
          Session.checkpoint_close ck);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "result bridge:torn\nfault bridge a b 1000\n";
      close_out oc;
      (* phase 2: resume salvages the two complete blocks, drops the torn
         one, and finishes the dictionary *)
      match Session.checkpoint_resume ~path with
      | Error m -> Alcotest.fail m
      | Ok (ck, prior) ->
          Alcotest.(check int) "torn tail dropped" 2 (List.length prior);
          let run =
            Fun.protect
              ~finally:(fun () -> Session.checkpoint_close ck)
              (fun () ->
                Engine.run ~resume:prior
                  ~checkpoint:(Session.checkpoint_append ck)
                  ~evaluators:[ fresh_dc_evaluator () ]
                  resilience_dictionary)
          in
          Alcotest.(check int) "two faults resumed" 2 run.Engine.resumed_count;
          Alcotest.(check int) "every fault reported" dict_size
            (List.length run.Engine.reports);
          Alcotest.(check string) "results match the uninterrupted run"
            expected
            (Session.to_string run.Engine.results);
          Alcotest.(check string) "checkpoint file is byte-identical"
            (Session.to_checkpoint_string reference.Engine.results)
            (read_file path))

let test_load_partial_salvages_prefix () =
  let results = (Lazy.force resilience_run).Engine.results in
  let n = List.length results in
  let prefix =
    Session.to_string (List.filteri (fun i _ -> i < n - 1) results)
  in
  (* a mid-write kill: a block torn in the middle of a candidate line *)
  let torn =
    prefix ^ "result bridge:torn\nfault bridge a b 1000\ncandidate 1 0.5"
  in
  let path = Filename.temp_file "atpg-partial" ".session" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc torn;
      close_out oc;
      (match Session.load ~path with
      | Ok _ -> Alcotest.fail "strict load accepted a torn session"
      | Error _ -> ());
      match Session.load_partial ~path with
      | Error m -> Alcotest.fail m
      | Ok partial ->
          Alcotest.(check int) "only the torn block dropped" (n - 1)
            (List.length partial))

(* -------------------------------------------------- session hostile input *)

let prop_session_never_raises =
  QCheck.Test.make
    ~name:"session parser returns Ok/Error on arbitrary input" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 300))
    (fun junk ->
      match Session.of_string ("atpg-session 1\n" ^ junk) with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "robustness"
    [
      ( "parser",
        [
          QCheck_alcotest.to_alcotest prop_parser_never_raises;
          QCheck_alcotest.to_alcotest prop_parser_structured_junk;
        ] );
      ( "execute",
        [
          Alcotest.test_case "ac zero frequency" `Quick test_ac_nonpositive_frequency;
          Alcotest.test_case "imd nyquist guard" `Quick test_imd_nyquist_guard;
        ] );
      ( "generate",
        [
          Alcotest.test_case "tiny impact budget" `Quick test_generate_tiny_budget;
          Alcotest.test_case "narrow impact span" `Quick test_generate_narrow_span;
        ] );
      ( "noise",
        [
          Alcotest.test_case "unknown node" `Quick test_noise_unknown_node;
          Alcotest.test_case "output scale" `Quick test_noise_iv_converter_scale;
        ] );
      ( "session",
        [ QCheck_alcotest.to_alcotest prop_session_never_raises ] );
      ( "failpoint",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_failpoint_determinism;
          Alcotest.test_case "trigger cap" `Quick test_failpoint_trigger_cap;
          Alcotest.test_case "dc NaN guard" `Quick test_dc_nan_guard;
          Alcotest.test_case "dc singular recovery" `Quick
            test_dc_singular_recovery;
          Alcotest.test_case "tran step failure" `Quick
            test_tran_step_failure_injection;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "ladder walk" `Quick test_protect_ladder_walk;
          Alcotest.test_case "quarantine attempts" `Quick
            test_protect_quarantine_attempts;
          Alcotest.test_case "unrecoverable propagates" `Quick
            test_protect_unrecoverable_propagates;
        ] );
      ( "engine",
        [
          Alcotest.test_case "recovers injected failures" `Slow
            test_engine_recovers_injected_failures;
          Alcotest.test_case "quarantines unrecoverable faults" `Quick
            test_engine_quarantines_unrecoverable_faults;
          Alcotest.test_case "fail fast" `Quick test_engine_fail_fast;
          Alcotest.test_case "deterministic under seed" `Slow
            test_engine_deterministic_under_seed;
          Alcotest.test_case "attempt budget quarantines" `Quick
            test_attempt_budget_quarantines;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume bit-for-bit" `Slow
            test_checkpoint_resume_bit_for_bit;
          Alcotest.test_case "partial load salvage" `Quick
            test_load_partial_salvages_prefix;
        ] );
    ]
