#!/usr/bin/env bash
# Exit-code contract of the atpg CLI, so CI can gate on run outcomes:
#   0 - clean run
#   3 - run completed but left quarantined faults
#   4 - a fail-fast policy terminated the run
# Driven from dune (see the rule in test/dune); $1 is the atpg executable.
set -u

atpg="$1"
fails=0

expect() {
  local want="$1"
  local label="$2"
  shift 2
  "$atpg" "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $label: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  else
    echo "ok   $label (exit $got)"
  fi
}

# Injection always fires at the first observables call; with no retries the
# fault quarantines immediately, so each run costs one calibration pass.
expect 0 "clean generate" \
  generate --fast --take 1
expect 3 "quarantined fault" \
  generate --fast --take 1 --max-retries 0 --inject execute.observables
expect 4 "fail-fast abort" \
  generate --fast --take 1 --max-retries 0 --fail-fast --inject execute.observables
expect 3 "quarantined fault (traced)" \
  generate --fast --take 1 --max-retries 0 --inject execute.observables \
  --trace cli_exit_codes_trace.jsonl

# The traced quarantined run must still have produced a non-empty trace.
if [ ! -s cli_exit_codes_trace.jsonl ]; then
  echo "FAIL traced run left an empty or missing trace file" >&2
  fails=$((fails + 1))
else
  echo "ok   traced run wrote $(wc -l < cli_exit_codes_trace.jsonl) trace lines"
fi
rm -f cli_exit_codes_trace.jsonl

# A session file that exists but is corrupt is its own failure class
# (exit 5), distinct from a missing file (plain IO error, exit 1).
corrupt=cli_exit_codes_corrupt.session
printf 'atpg-session 99\n' > "$corrupt"
expect 5 "corrupt session file" \
  compact --fast --load "$corrupt"
printf 'atpg-session 1\nresult x\ntruncated' > "$corrupt"
expect 5 "torn session file" \
  compact --fast --load "$corrupt"
rm -f "$corrupt"
expect 1 "missing session file" \
  compact --fast --load "$corrupt"

# The exit-code contract must hold identically under a worker pool, and
# probabilistic injection must quarantine the same faults at every job
# count (per-fault injection scopes make the pattern scheduling-free).
inject_run() {
  local jobs="$1"
  local save="$2"
  "$atpg" generate --fast --take 3 --max-retries 1 \
    --inject "dc.no_convergence=0.6@4" --inject-seed 11 \
    --jobs "$jobs" --save "$save" 2>"$save.err" >/dev/null
  echo $?
}
s1=cli_exit_codes_j1.session
s4=cli_exit_codes_j4.session
code1=$(inject_run 1 "$s1")
code4=$(inject_run 4 "$s4")
if [ "$code1" -ne "$code4" ]; then
  echo "FAIL injected exit codes differ: jobs 1 -> $code1, jobs 4 -> $code4" >&2
  fails=$((fails + 1))
elif [ "$code1" -ne 0 ] && [ "$code1" -ne 3 ]; then
  echo "FAIL injected run exited $code1 (contract allows 0 or 3)" >&2
  fails=$((fails + 1))
else
  echo "ok   injected exit code identical across jobs (exit $code1)"
fi
if ! cmp -s "$s1" "$s4"; then
  echo "FAIL injected session files differ between --jobs 1 and --jobs 4" >&2
  fails=$((fails + 1))
else
  echo "ok   injected session files byte-identical across jobs"
fi
if ! diff -q <(grep -i quarantin "$s1.err" || true) \
             <(grep -i quarantin "$s4.err" || true) >/dev/null; then
  echo "FAIL quarantine reports differ between --jobs 1 and --jobs 4" >&2
  fails=$((fails + 1))
else
  echo "ok   quarantine reports identical across jobs"
fi
rm -f "$s1" "$s4" "$s1.err" "$s4.err"

# Daemon exit contract: a client that cannot reach the socket fails with
# a plain IO error (1); a served request mirrors the run's exit code
# through the wire (0 here); a SIGTERMed daemon drains and exits 0; a
# rejected request is its own class (6, checked in-process by
# test_serve.ml along with drained = 7).
sock="/tmp/atpg-cec-$$.sock"
spool="/tmp/atpg-cec-$$.spool"
expect 1 "client without a daemon" \
  client --socket "$sock" ping
"$atpg" serve --socket "$sock" --spool "$spool" --budget 1 \
  >/dev/null 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.05
done
expect 0 "client ping" \
  client --socket "$sock" ping
expect 0 "client generate via daemon" \
  client --socket "$sock" generate --macro rc4 --take 1 --fast
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_code=$?
if [ "$serve_code" -ne 0 ]; then
  echo "FAIL daemon drain: expected exit 0, got $serve_code" >&2
  fails=$((fails + 1))
else
  echo "ok   daemon drained on SIGTERM (exit 0)"
fi
rm -rf "$spool" "$sock"

exit "$fails"
