#!/usr/bin/env bash
# Exit-code contract of the atpg CLI, so CI can gate on run outcomes:
#   0 - clean run
#   3 - run completed but left quarantined faults
#   4 - a fail-fast policy terminated the run
# Driven from dune (see the rule in test/dune); $1 is the atpg executable.
set -u

atpg="$1"
fails=0

expect() {
  local want="$1"
  local label="$2"
  shift 2
  "$atpg" "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $label: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  else
    echo "ok   $label (exit $got)"
  fi
}

# Injection always fires at the first observables call; with no retries the
# fault quarantines immediately, so each run costs one calibration pass.
expect 0 "clean generate" \
  generate --fast --take 1
expect 3 "quarantined fault" \
  generate --fast --take 1 --max-retries 0 --inject execute.observables
expect 4 "fail-fast abort" \
  generate --fast --take 1 --max-retries 0 --fail-fast --inject execute.observables
expect 3 "quarantined fault (traced)" \
  generate --fast --take 1 --max-retries 0 --inject execute.observables \
  --trace cli_exit_codes_trace.jsonl

# The traced quarantined run must still have produced a non-empty trace.
if [ ! -s cli_exit_codes_trace.jsonl ]; then
  echo "FAIL traced run left an empty or missing trace file" >&2
  fails=$((fails + 1))
else
  echo "ok   traced run wrote $(wc -l < cli_exit_codes_trace.jsonl) trace lines"
fi
rm -f cli_exit_codes_trace.jsonl

exit "$fails"
