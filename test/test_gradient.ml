(* Adjoint sensitivities against a finite-difference oracle: the
   transpose-solve primitives, the execute-level observable gradients
   (parameter and fault-impact), the tolerance-box gradient, and the
   full evaluator chain dS/dp across the rc_ladder, ota, sallen_key and
   IV-converter macros — verified to machine precision with a step-size
   sweep whose error curve brackets the adjoint value. *)

open Testgen
module Mat = Numerics.Mat
module Cmat = Numerics.Cmat
module Vec = Numerics.Vec
module Rng = Numerics.Rng
module Scenario = Fuzz.Scenario

let bits = Int64.bits_of_float

(* --------------------------------------------- transpose primitives *)

(* Diagonally dominant random system: well-conditioned, never singular,
   so the property exercises arithmetic rather than pivoting luck. *)
let random_system rng n =
  let a = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set a i j (Rng.uniform rng ~lo:(-1.) ~hi:1.)
    done;
    Mat.add_to a i i (float_of_int n)
  done;
  a

let prop_mat_transpose =
  QCheck.Test.make ~name:"Mat.solve_transpose_into solves A^T x = b"
    ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_range 1 9))
    (fun (seed, n) ->
      let rng = Rng.create (Int64.of_int ((seed * 13) + n)) in
      let a = random_system rng n in
      let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.) in
      let ws = Mat.lu_workspace n in
      Mat.factor_in_place a ws;
      let x = Array.make n 0. in
      Mat.solve_transpose_into ws b x;
      let at = Mat.transpose a in
      let residual = Vec.sub (Mat.mul_vec at x) b in
      let reference = Mat.lu_solve (Mat.lu_factor at) b in
      Array.for_all (fun r -> Float.abs r <= 1e-9) residual
      && Array.for_all
           (fun d -> Float.abs d <= 1e-9)
           (Vec.sub x reference))

let prop_cmat_transpose =
  QCheck.Test.make ~name:"Cmat.solve_transpose solves A^T x = b" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_range 1 9))
    (fun (seed, n) ->
      let rng = Rng.create (Int64.of_int ((seed * 17) + n)) in
      let z () =
        {
          Complex.re = Rng.uniform rng ~lo:(-1.) ~hi:1.;
          im = Rng.uniform rng ~lo:(-1.) ~hi:1.;
        }
      in
      let a = Cmat.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Cmat.set a i j (z ())
        done;
        Cmat.add_to a i i { Complex.re = float_of_int n; im = 0. }
      done;
      let b = Array.init n (fun _ -> z ()) in
      let x = Cmat.solve_transpose a b in
      let residual = Cmat.mul_vec (Cmat.transpose a) x in
      let reference = Cmat.solve (Cmat.transpose a) b in
      Array.for_all2
        (fun r bi -> Complex.norm (Complex.sub r bi) <= 1e-9)
        residual b
      && Array.for_all2
           (fun u v -> Complex.norm (Complex.sub u v) <= 1e-9)
           x reference)

(* ------------------------------------------------------- fixtures *)

(* The default solver tolerance (abstol 1e-9) quantizes the computed
   sensitivity surface at a level a central difference would amplify by
   1/h; a machine-precision gradient check needs the Newton fixed point
   resolved much tighter than the 1e-6 bar. *)
let tight_profile =
  {
    Execute.fast_profile with
    Execute.dc_options =
      {
        Circuit.Dc.default_options with
        Circuit.Dc.abstol = 1e-12;
        reltol = 1e-10;
      };
  }

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let iv_corners =
  lazy
    (List.map
       (Experiments.Setup.target_of_macro Macros.Iv_converter.macro)
       (Macros.Process.corners ()))

let iv_evaluator ?(box = `Floor) config =
  let box_model =
    match box with
    | `Floor -> Tolerance.floor_only config
    | `Calibrated ->
        Tolerance.calibrate ~profile:tight_profile config ~nominal:iv_target
          ~corners:(Lazy.force iv_corners) ()
  in
  Evaluator.create ~profile:tight_profile ~mode:`Compiled config
    ~nominal:iv_target ~box_model

let iv_ev1 = lazy (iv_evaluator Experiments.Iv_configs.config1)
let iv_ev2 = lazy (iv_evaluator Experiments.Iv_configs.config2)
let bridge = Faults.Fault.bridge "n1" "vout" ~resistance:10e3
let pinhole = Faults.Fault.pinhole "m6" ~r_shunt:2e3

(* ------------------------------------------------ the FD harness *)

let rel_err got expected =
  Float.abs (got -. expected) /. Float.max 1. (Float.abs expected)

(* Central difference of [eval] along parameter [d].  [None] when a
   stencil point hits the detected sentinel (the cost surface cliffs to
   -1e6 where the faulty solve fails — not differentiable). *)
let fd_slope eval (values : Vec.t) d h =
  let at x =
    let v = Array.copy values in
    v.(d) <- v.(d) +. x;
    eval v
  in
  let fp = at h and fm = at (-.h) in
  if
    fp = Evaluator.detected_sentinel
    || fm = Evaluator.detected_sentinel
  then None
  else Some ((fp -. fm) /. (2. *. h))

(* Best agreement between the adjoint value [grad] and a step-size
   sweep of central differences.  [None] asks the caller to skip the
   point: a sentinel stencil, or two mid-sweep steps that disagree —
   the signature of a kink (min/abs/argmax switch, box lattice edge,
   level-clamp) between the stencil points, where no finite difference
   converges to the one-sided adjoint. *)
let fd_check eval values d ~grad ~scale =
  let fd h = fd_slope eval values d (h *. scale) in
  match (fd 1e-3, fd 1e-4) with
  | Some f1, Some f2
    when Float.abs (f1 -. f2) <= 1e-3 *. Float.max 1. (Float.abs f1) ->
      let errs =
        List.filter_map
          (fun h -> Option.map (fun f -> rel_err f grad) (fd h))
          [ 3e-2; 1e-2; 3e-3; 1e-3; 3e-4; 1e-4; 3e-5; 1e-5 ]
      in
      Some (List.fold_left Float.min infinity errs)
  | _ -> None

let grad_tolerance = 1e-6

(* The FD oracle's noise floor is absolute — solver tolerance divided
   by the step — while the bar is relative to the gradient.  Deep in
   the detection region (|S| in the hundreds) the difference quotient
   cancels catastrophically and no step certifies 1e-6, adjoint or
   not.  A genuinely wrong gradient (sign, scale, missing chain term)
   misses by O(1), so points whose best agreement lands between the
   certification bar and the wrongness bar are oracle-limited: counted
   as skips, like kinks. *)
let wrongness_bar = 1e-3

type verdict = Certified | Oracle_limited | Wrong of float

let classify = function
  | None -> Oracle_limited
  | Some err ->
      if err <= grad_tolerance then Certified
      else if err <= wrongness_bar then Oracle_limited
      else Wrong err

(* Check every partial of [fault] at [values]; returns how many were
   verified vs skipped, failing the test on a bad partial.  Also pins
   the contract that the gradient's value part is bit-identical to the
   scalar sensitivity path. *)
let check_gradient_at label ev fault values ~checked ~skipped =
  let config = Evaluator.config ev in
  let lower, upper = Test_param.bounds_of config.Test_config.params in
  match Evaluator.sensitivity_gradient ev fault values with
  | None -> Alcotest.failf "%s: configuration must admit the adjoint" label
  | Some (s, grad) ->
      Alcotest.(check int64)
        (label ^ ": value part bit-identical to Evaluator.sensitivity")
        (bits (Evaluator.sensitivity ev fault values))
        (bits s);
      if s = Evaluator.detected_sentinel then incr skipped
      else
        Array.iteri
          (fun d g ->
            let scale = upper.(d) -. lower.(d) in
            match
              classify
                (fd_check
                   (fun v -> Evaluator.sensitivity ev fault v)
                   values d ~grad:g ~scale)
            with
            | Certified -> incr checked
            | Oracle_limited -> incr skipped
            | Wrong err ->
                Alcotest.failf
                  "%s: dS/dp[%d] = %.12g disagrees with FD (best rel err %.3g)"
                  label d g err)
          grad

let point_at config frac =
  let lower, upper = Test_param.bounds_of config.Test_config.params in
  Array.init (Array.length lower) (fun d ->
      lower.(d) +. (frac *. (upper.(d) -. lower.(d))))

(* ------------------------------- scenario macros: rc, ota, sallen *)

let scenario_built topology =
  Scenario.build
    {
      Scenario.minimal with
      Scenario.topology;
      fault_count = 4;
      bridge_weight = 60;
      config_count = 2;
      levels = 2;
      value_seed = 11;
    }

let test_topology_gradients topology () =
  let built = scenario_built topology in
  let evaluators =
    List.map
      (fun ev -> Evaluator.with_profile ev tight_profile)
      built.Scenario.evaluators
  in
  let entries = Faults.Dictionary.entries built.Scenario.dictionary in
  let checked = ref 0 and skipped = ref 0 in
  List.iter
    (fun ev ->
      let config = Evaluator.config ev in
      List.iter
        (fun (entry : Faults.Dictionary.entry) ->
          List.iter
            (fun impact_scale ->
              let fault =
                Faults.Fault.with_impact entry.Faults.Dictionary.fault
                  (impact_scale
                  *. Faults.Fault.impact_resistance
                       entry.Faults.Dictionary.fault)
              in
              List.iter
                (fun frac ->
                  let label =
                    Printf.sprintf "%s config %d %s x%g @%g"
                      (Scenario.to_string built.Scenario.spec)
                      config.Test_config.config_id
                      entry.Faults.Dictionary.fault_id impact_scale frac
                  in
                  check_gradient_at label ev fault (point_at config frac)
                    ~checked ~skipped)
                [ 0.35; 0.65 ])
            [ 1.0; 0.45 ])
        entries)
    evaluators;
  Alcotest.(check bool)
    (Printf.sprintf "enough partials verified (%d checked, %d skipped)"
       !checked !skipped)
    true (!checked >= 5)

(* ------------------------------------ IV converter: random probes *)

let iv_entries =
  lazy
    (Array.of_list
       (Faults.Dictionary.entries
          (Macros.Macro.dictionary Macros.Iv_converter.macro)))

let prop_iv_gradient =
  QCheck.Test.make
    ~name:"IV converter: adjoint dS/dp matches FD at random fault points"
    ~count:20
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, two_param) ->
      let rng = Rng.create (Int64.of_int ((seed * 2) + Bool.to_int two_param)) in
      let ev = Lazy.force (if two_param then iv_ev2 else iv_ev1) in
      let config = Evaluator.config ev in
      let entries = Lazy.force iv_entries in
      let entry = entries.(Rng.int rng ~bound:(Array.length entries)) in
      let fault =
        Faults.Fault.with_impact entry.Faults.Dictionary.fault
          (Faults.Fault.impact_resistance entry.Faults.Dictionary.fault
          *. Rng.uniform rng ~lo:0.4 ~hi:2.5)
      in
      let lower, upper = Test_param.bounds_of config.Test_config.params in
      let values =
        Array.init (Array.length lower) (fun d ->
            let f = Rng.uniform rng ~lo:0.2 ~hi:0.8 in
            lower.(d) +. (f *. (upper.(d) -. lower.(d))))
      in
      match Evaluator.sensitivity_gradient ev fault values with
      | None -> false
      | Some (s, grad) ->
          s = Evaluator.detected_sentinel
          ||
          let ok = ref true and usable = ref false in
          Array.iteri
            (fun d g ->
              let scale = upper.(d) -. lower.(d) in
              match
                classify
                  (fd_check
                     (fun v -> Evaluator.sensitivity ev fault v)
                     values d ~grad:g ~scale)
              with
              | Certified -> usable := true
              | Oracle_limited -> ()
              | Wrong _ -> ok := false)
            grad;
          QCheck.assume (!usable || not !ok);
          !ok)

(* Nominal-point (seed) check on both DC configurations, pinned. *)
let test_iv_gradient_at_seeds () =
  let checked = ref 0 and skipped = ref 0 in
  List.iter
    (fun ev ->
      let config = Evaluator.config ev in
      let seeds = Test_param.seeds_of config.Test_config.params in
      List.iter
        (fun fault ->
          let label =
            Printf.sprintf "config %d seed %s" config.Test_config.config_id
              (Faults.Fault.id fault)
          in
          check_gradient_at label ev fault seeds ~checked ~skipped)
        [ bridge; Faults.Fault.with_impact bridge 3e3; pinhole ])
    [ Lazy.force iv_ev1; Lazy.force iv_ev2 ];
  Alcotest.(check bool)
    (Printf.sprintf "seed partials verified (%d checked, %d skipped)" !checked
       !skipped)
    true
    (!checked >= 4)

(* ----------------------------- calibrated box: the dbox chain term *)

(* With a corner-calibrated box the cost depends on the parameters
   through the box surface as well as the response; a gradient that
   dropped the dbox term would fail this check. *)
let test_calibrated_box_gradient () =
  let ev = iv_evaluator ~box:`Calibrated Experiments.Iv_configs.config1 in
  let config = Evaluator.config ev in
  let tol =
    Tolerance.calibrate ~profile:tight_profile config ~nominal:iv_target
      ~corners:(Lazy.force iv_corners) ()
  in
  let box_moves = ref false in
  let checked = ref 0 and skipped = ref 0 in
  List.iter
    (fun frac ->
      let values = point_at config frac in
      let _, dbox = Tolerance.box_gradient tol values in
      if Array.exists (fun row -> Array.exists (fun d -> d <> 0.) row) dbox
      then box_moves := true;
      List.iter
        (fun fault ->
          check_gradient_at
            (Printf.sprintf "calibrated box @%g %s" frac
               (Faults.Fault.id fault))
            ev fault values ~checked ~skipped)
        [ bridge; Faults.Fault.with_impact bridge 3e3 ])
    [ 0.3; 0.45; 0.6; 0.8 ];
  Alcotest.(check bool) "calibrated box has nonzero slope somewhere" true
    !box_moves;
  Alcotest.(check bool)
    (Printf.sprintf "calibrated partials verified (%d checked, %d skipped)"
       !checked !skipped)
    true (!checked >= 3)

(* Tolerance.box_gradient against FD of Tolerance.box directly, and the
   bit-identity of its box part. *)
let test_box_gradient_vs_fd () =
  let config = Experiments.Iv_configs.config2 in
  let tol =
    Tolerance.calibrate ~profile:tight_profile config ~nominal:iv_target
      ~corners:(Lazy.force iv_corners) ()
  in
  let lower, upper = Test_param.bounds_of config.Test_config.params in
  let rng = Rng.create 7L in
  let checked = ref 0 in
  for _ = 1 to 40 do
    let values =
      Array.init (Array.length lower) (fun d ->
          lower.(d) +. (Rng.uniform rng ~lo:0.05 ~hi:0.95 *. (upper.(d) -. lower.(d))))
    in
    let box, dbox = Tolerance.box_gradient tol values in
    Array.iteri
      (fun i b ->
        Alcotest.(check int64)
          (Printf.sprintf "box part bit-identical (row %d)" i)
          (bits (Tolerance.box tol values).(i))
          (bits b))
      box;
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun d g ->
            let scale = upper.(d) -. lower.(d) in
            let fd h =
              fd_slope (fun v -> (Tolerance.box tol v).(i)) values d (h *. scale)
            in
            match (fd 1e-5, fd 2.5e-6) with
            (* piecewise multilinear: inside a cell both steps agree and
               FD is exact to rounding; across a lattice edge or where
               the floor starts to bind they disagree — skip. *)
            | Some f1, Some f2
              when Float.abs (f1 -. f2) <= 1e-6 *. Float.max 1. (Float.abs f1)
              ->
                incr checked;
                if rel_err f1 g > 1e-6 then
                  Alcotest.failf
                    "dbox.(%d).(%d) = %.12g disagrees with FD %.12g" i d g f1
            | _ -> ())
          row)
      dbox
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough box partials verified (%d)" !checked)
    true (!checked >= 20)

(* --------------------------- step-size sweep: the FD error curve *)

(* The classic verification figure: truncation error decays as the
   step shrinks until solver roundoff takes over and the error grows
   again.  The adjoint value sits below both ends of the curve — the
   sweep brackets it — and the best step agrees to machine precision. *)
let test_step_sweep_brackets_adjoint () =
  let ev = Lazy.force iv_ev1 in
  let config = Evaluator.config ev in
  let lower, upper = Test_param.bounds_of config.Test_config.params in
  let scale = upper.(0) -. lower.(0) in
  let values = point_at config 0.4 in
  match Evaluator.sensitivity_gradient ev bridge values with
  | None -> Alcotest.fail "config 1 must admit the adjoint"
  | Some (_, grad) ->
      let errs =
        List.map
          (fun h ->
            match
              fd_slope (fun v -> Evaluator.sensitivity ev bridge v) values 0
                (h *. scale)
            with
            | None -> Alcotest.fail "stencil hit the sentinel"
            | Some fd -> rel_err fd grad.(0))
          [ 3e-2; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8 ]
      in
      let best = List.fold_left Float.min infinity errs in
      let coarse = List.hd errs and fine = List.nth errs (List.length errs - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "best step agrees to %.1g (got %.3g)" grad_tolerance
           best)
        true (best <= grad_tolerance);
      Alcotest.(check bool)
        (Printf.sprintf
           "coarse end is truncation-limited (%.3g > best %.3g)" coarse best)
        true (coarse > best);
      Alcotest.(check bool)
        (Printf.sprintf "fine end is roundoff-limited (%.3g >= best %.3g)"
           fine best)
        true (fine >= best)

(* ------------------------------------- fault-impact derivative *)

(* g_dimpact from the compiled gradient against a log-step central
   difference of the compiled observables over the model resistance. *)
let test_impact_derivative_vs_fd () =
  let config = Experiments.Iv_configs.config1 in
  let values = Test_param.seeds_of config.Test_config.params in
  List.iter
    (fun fault ->
      let name, r = Faults.Inject.impact_override fault in
      let target =
        {
          iv_target with
          Execute.netlist = Faults.Inject.apply iv_target.Execute.netlist fault;
        }
      in
      let plan = Execute.compile config target in
      let observe rr =
        Execute.compiled_observables ~profile:tight_profile ~impact:(name, rr)
          plan values
      in
      match
        Execute.compiled_gradient ~profile:tight_profile ~impact:(name, r)
          plan values
      with
      | None -> Alcotest.fail "DC levels must admit the compiled gradient"
      | Some g ->
          Array.iteri
            (fun k obs ->
              Alcotest.(check int64)
                (Printf.sprintf "%s: g_obs.(%d) bit-identical"
                   (Faults.Fault.id fault) k)
                (bits (observe r).(k))
                (bits obs))
            g.Execute.g_obs;
          let dimpact =
            match g.Execute.g_dimpact with
            | Some d -> d
            | None -> Alcotest.fail "impact override must produce g_dimpact"
          in
          Array.iteri
            (fun k di ->
              (* d obs / d (ln r) = r * dobs/dr, via symmetric factors *)
              let logslope = r *. di in
              let err =
                List.fold_left
                  (fun acc h ->
                    let f = exp h in
                    let fd =
                      ((observe (r *. f)).(k) -. (observe (r /. f)).(k))
                      /. (2. *. h)
                    in
                    Float.min acc (rel_err fd logslope))
                  infinity
                  [ 1e-2; 3e-3; 1e-3; 3e-4 ]
              in
              if err > grad_tolerance then
                Alcotest.failf
                  "%s: r*dV/dr for observable %d = %.12g off by %.3g"
                  (Faults.Fault.id fault) k logslope err)
            dimpact)
    [ bridge; Faults.Fault.with_impact bridge 2e3; pinhole ]

(* ------------------------------------------- fallback contract *)

let test_fallback_is_free () =
  (* non-DC analyses never pretend to have a gradient *)
  (match
     Execute.gradient ~profile:tight_profile Experiments.Iv_configs.config3
       iv_target
       (Test_param.seeds_of
          Experiments.Iv_configs.config3.Test_config.params)
   with
  | None -> ()
  | Some _ -> Alcotest.fail "THD configuration claimed an analytic gradient");
  (* the legacy evaluator path declines too, without charging *)
  let config = Experiments.Iv_configs.config1 in
  let ev =
    Evaluator.create ~profile:tight_profile ~mode:`Legacy config
      ~nominal:iv_target
      ~box_model:(Tolerance.floor_only config)
  in
  let before = Evaluator.evaluation_count ev in
  (match
     Evaluator.sensitivity_gradient ev bridge
       (Test_param.seeds_of config.Test_config.params)
   with
  | None -> ()
  | Some _ -> Alcotest.fail "legacy evaluator claimed an analytic gradient");
  Alcotest.(check int) "declining costs no evaluations" before
    (Evaluator.evaluation_count ev)

(* ---------------------------- generation parity: grad vs oracle *)

let grad_options =
  { Generate.default_options with Generate.use_gradient = true }

(* Both optimizer arities: config 1 drives the Brent oracle, config 2
   the Powell oracle; the gradient mode replaces both. *)
let parity_evaluators () =
  List.map
    (fun config ->
      Evaluator.create ~mode:`Compiled config ~nominal:iv_target
        ~box_model:(Tolerance.floor_only config))
    [ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]

let parity_dictionary = lazy (Macros.Macro.dictionary Macros.Iv_converter.macro)

let run_with ?options ?(executor = Engine.sequential) () =
  Engine.run ?options ~executor ~evaluators:(parity_evaluators ())
    (Lazy.force parity_dictionary)

let outcome_flavour (r : Generate.result) =
  match r.Generate.outcome with
  | Generate.Unique _ -> "unique"
  | Generate.Undetectable _ -> "undetectable"

let probe_count (run : Engine.run) =
  List.fold_left
    (fun acc (r : Generate.result) ->
      List.fold_left
        (fun acc (c : Generate.candidate) ->
          acc + c.Generate.optimizer_evaluations)
        acc r.Generate.candidates)
    0 run.Engine.results

(* The gradient optimizer must reach the oracle's verdict on every
   fault of the seed macro's dictionary, while spending a fraction of
   its optimizer probes. *)
let test_grad_verdict_parity () =
  let oracle = run_with () in
  let grad = run_with ~options:grad_options () in
  Alcotest.(check int) "same result count"
    (List.length oracle.Engine.results)
    (List.length grad.Engine.results);
  List.iter2
    (fun (o : Generate.result) (g : Generate.result) ->
      Alcotest.(check string) "fault order" o.Generate.fault_id
        g.Generate.fault_id;
      Alcotest.(check string)
        (o.Generate.fault_id ^ ": detect verdict")
        (outcome_flavour o) (outcome_flavour g))
    oracle.Engine.results grad.Engine.results;
  let po = probe_count oracle and pg = probe_count grad in
  Alcotest.(check bool)
    (Printf.sprintf "gradient probes %d well under oracle probes %d" pg po)
    true
    (float_of_int pg <= 0.6 *. float_of_int po)

let outcome_label (o : Generate.result Resilience.outcome) =
  match o with
  | Resilience.Ok _ -> "ok"
  | Resilience.Recovered _ ->
      "recovered:" ^ Option.value ~default:"?" (Resilience.recovery_rung o)
  | Resilience.Failed d -> "failed:" ^ d.Resilience.diag_error

(* everything observable about a run except wall-clock time *)
let fingerprint (run : Engine.run) =
  ( Session.to_string run.Engine.results,
    List.map
      (fun (r : Engine.fault_report) ->
        (r.Engine.report_fault_id, outcome_label r.Engine.report_outcome))
      run.Engine.reports,
    run.Engine.rung_stats,
    run.Engine.recovered_count,
    run.Engine.total_fault_simulations,
    List.map (fun d -> d.Resilience.diag_fault_id) run.Engine.failed_faults )

(* A gradient run is a pure function of the dictionary: the session
   checkpoint bytes must not depend on the worker count. *)
let test_grad_jobs_determinism () =
  let seq = run_with ~options:grad_options () in
  let par =
    run_with ~options:grad_options ~executor:(Parallel.executor ~jobs:4) ()
  in
  Alcotest.(check string) "session checkpoint bytes identical"
    (Session.to_string seq.Engine.results)
    (Session.to_string par.Engine.results);
  Alcotest.(check bool) "full run fingerprints identical" true
    (fingerprint seq = fingerprint par)

let () =
  Alcotest.run "gradient"
    [
      ( "transpose",
        [
          QCheck_alcotest.to_alcotest prop_mat_transpose;
          QCheck_alcotest.to_alcotest prop_cmat_transpose;
        ] );
      ( "scenario macros",
        [
          Alcotest.test_case "rc_ladder" `Quick
            (test_topology_gradients (Scenario.Rc_ladder 3));
          Alcotest.test_case "ota" `Quick
            (test_topology_gradients Scenario.Ota);
          Alcotest.test_case "sallen_key" `Quick
            (test_topology_gradients Scenario.Sallen_key);
        ] );
      ( "iv converter",
        [
          Alcotest.test_case "pinned seed points" `Quick
            test_iv_gradient_at_seeds;
          QCheck_alcotest.to_alcotest prop_iv_gradient;
          Alcotest.test_case "calibrated box chain term" `Quick
            test_calibrated_box_gradient;
          Alcotest.test_case "step-size sweep brackets" `Quick
            test_step_sweep_brackets_adjoint;
          Alcotest.test_case "impact derivative" `Quick
            test_impact_derivative_vs_fd;
        ] );
      ( "box",
        [ Alcotest.test_case "box_gradient vs FD" `Quick test_box_gradient_vs_fd ] );
      ( "fallback",
        [ Alcotest.test_case "None is free" `Quick test_fallback_is_free ] );
      ( "generation parity",
        [
          Alcotest.test_case "verdicts match the oracle" `Quick
            test_grad_verdict_parity;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick
            test_grad_jobs_determinism;
        ] );
    ]
