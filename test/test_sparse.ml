(* Parity suite for the sparse backend.

   The load-bearing property is stronger than tolerance agreement: the
   sparse factorization replicates the dense pivot rule and update
   sequence, so factors, solves, transpose solves and Singular payloads
   are bit-identical to [Mat] on any pattern.  The QCheck properties pin
   that bitwise, on randomized MNA-shaped systems (node conductance
   blocks plus zero-diagonal branch rows, which force pivoting); the
   1e-10 agreement the satellite asks for follows a fortiori.  The
   minimum-degree layer is checked for fill reduction on the adversarial
   arrow pattern and for solve parity under symmetric permutation. *)

open Numerics

let bits = Int64.bits_of_float

let vec_bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
      !ok)

let vec_close ?(eps = 1e-10) a b =
  Vec.dist_inf a b <= eps *. (1. +. Vec.norm_inf b)

(* A randomized MNA-shaped system: [nodes] voltage unknowns carrying a
   tiny gmin diagonal plus random two-terminal conductance stamps (some
   terminals grounded), and [branches] voltage-source rows with the
   classic +-1 incidence stamps and a structurally zero diagonal.  The
   same stamp sequence is replayed into a dense matrix and a sparse one,
   so the two hold identical values over the identical pattern. *)
let random_mna_pair rng ~nodes ~branches =
  let n = nodes + branches in
  let stamps = ref [] in
  let add i j v = stamps := (i, j, v) :: !stamps in
  for i = 0 to nodes - 1 do
    add i i 1e-12
  done;
  for _ = 1 to 2 * nodes do
    let i = Rng.int rng ~bound:(nodes + 1) - 1 in
    let j = Rng.int rng ~bound:(nodes + 1) - 1 in
    if i <> j then begin
      let g = Rng.uniform rng ~lo:0.1 ~hi:10. in
      if i >= 0 then add i i g;
      if j >= 0 then add j j g;
      if i >= 0 && j >= 0 then begin
        add i j (-.g);
        add j i (-.g)
      end
    end
  done;
  for b = 0 to branches - 1 do
    let br = nodes + b in
    let i = Rng.int rng ~bound:nodes in
    let j = Rng.int rng ~bound:(nodes + 1) - 1 in
    add i br 1.;
    add br i 1.;
    if j >= 0 && j <> i then begin
      add j br (-1.);
      add br j (-1.)
    end
  done;
  let stamps = List.rev !stamps in
  let dense = Mat.create n n in
  List.iter (fun (i, j, v) -> Mat.add_to dense i j v) stamps;
  let pattern = List.map (fun (i, j, _) -> (i, j)) stamps in
  (* the MNA plan compiles the full diagonal into the pattern *)
  let pattern = List.init n (fun i -> (i, i)) @ pattern in
  let sparse = Smat.create n pattern in
  List.iter (fun (i, j, v) -> Smat.add_to sparse i j v) stamps;
  (dense, sparse)

let random_rhs rng n = Array.init n (fun _ -> Rng.uniform rng ~lo:(-5.) ~hi:5.)

let size_gen = QCheck.(pair (pair (int_range 2 14) (int_range 0 4)) (int_range 0 20_000))

(* Outcome of a factor+solve through either backend: either the solved
   vectors or the Singular payload, compared structurally. *)
let dense_outcome a b bt =
  let n = Mat.rows a in
  let ws = Mat.lu_workspace n in
  match Mat.factor_in_place a ws with
  | exception Mat.Singular k -> Error k
  | () ->
      let x = Vec.create n 0. and xt = Vec.create n 0. in
      Mat.solve_into ws b x;
      Mat.solve_transpose_into ws bt xt;
      Ok (x, xt)

let sparse_outcome a b bt =
  let n = Smat.size a in
  let ws = Smat.lu_workspace n in
  match Smat.factor_in_place a ws with
  | exception Mat.Singular k -> Error k
  | () ->
      let x = Vec.create n 0. and xt = Vec.create n 0. in
      Smat.solve_into ws b x;
      Smat.solve_transpose_into ws bt xt;
      Ok (x, xt)

let prop_factor_solve_parity =
  QCheck.Test.make
    ~name:"Smat factor/solve/transpose bit-identical to Mat on MNA patterns"
    ~count:300 size_gen
    (fun ((nodes, branches), seed) ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let dense, sparse = random_mna_pair rng ~nodes ~branches in
      let n = Mat.rows dense in
      let b = random_rhs rng n and bt = random_rhs rng n in
      match (dense_outcome dense b bt, sparse_outcome sparse b bt) with
      | Error kd, Error ks -> kd = ks
      | Ok (xd, xtd), Ok (xs, xts) ->
          vec_bits_equal xd xs && vec_bits_equal xtd xts
      | Error _, Ok _ | Ok _, Error _ -> false)

let prop_pivot_parity =
  QCheck.Test.make ~name:"Smat pivot permutation matches Mat" ~count:200
    size_gen
    (fun ((nodes, branches), seed) ->
      let rng = Rng.create (Int64.of_int (seed + 11)) in
      let dense, sparse = random_mna_pair rng ~nodes ~branches in
      let n = Mat.rows dense in
      let wd = Mat.lu_workspace n and ws = Smat.lu_workspace n in
      match (Mat.factor_in_place dense wd, Smat.factor_in_place sparse ws) with
      | (), () -> Mat.lu_pivots wd = Smat.lu_pivots ws
      | exception Mat.Singular _ -> QCheck.assume_fail ())

let prop_refactor_bit_exact =
  QCheck.Test.make
    ~name:"refactor after a value change is bit-identical to a fresh factor"
    ~count:200 size_gen
    (fun ((nodes, branches), seed) ->
      let rng = Rng.create (Int64.of_int (seed + 23)) in
      let dense, sparse = random_mna_pair rng ~nodes ~branches in
      let n = Mat.rows dense in
      let held = Smat.lu_workspace n in
      (match Smat.factor_in_place sparse held with
      | exception Mat.Singular _ -> QCheck.assume_fail ()
      | () -> ());
      (* perturb one conductance the way a fault-impact restamp does:
         a symmetric delta on an existing node block *)
      let i = Rng.int rng ~bound:nodes in
      let dg = Rng.uniform rng ~lo:0.01 ~hi:1. in
      Smat.add_to sparse i i dg;
      Mat.add_to dense i i dg;
      let b = random_rhs rng n in
      let x_re = Vec.create n 0. and x_fresh = Vec.create n 0. in
      let used_replay = Smat.refactor sparse held in
      (match
         if not used_replay then Smat.factor_in_place sparse held
       with
      | exception Mat.Singular _ ->
          (* perturbation made it singular — parity of that case is
             covered by the dedicated singular tests *)
          QCheck.assume_fail ()
      | () -> ());
      Smat.solve_into held b x_re;
      let fresh = Smat.lu_workspace n in
      Smat.factor_in_place sparse fresh;
      Smat.solve_into fresh b x_fresh;
      let xd = Vec.create n 0. in
      let wd = Mat.lu_workspace n in
      Mat.factor_in_place dense wd;
      Mat.solve_into wd b xd;
      vec_bits_equal x_re x_fresh && vec_bits_equal x_re xd)

let prop_solve_block_parity =
  QCheck.Test.make
    ~name:"solve_block columns bit-identical to sequential solve_into"
    ~count:100 size_gen
    (fun ((nodes, branches), seed) ->
      let rng = Rng.create (Int64.of_int (seed + 37)) in
      let _, sparse = random_mna_pair rng ~nodes ~branches in
      let n = Smat.size sparse in
      let ws = Smat.lu_workspace n in
      (match Smat.factor_in_place sparse ws with
      | exception Mat.Singular _ -> QCheck.assume_fail ()
      | () -> ());
      let m = 1 + Rng.int rng ~bound:7 in
      let rhs = Array.init m (fun _ -> random_rhs rng n) in
      let b = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m in
      let x = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m in
      for r = 0 to m - 1 do
        for i = 0 to n - 1 do
          b.{i, r} <- rhs.(r).(i)
        done
      done;
      Smat.solve_block ws ~b ~x;
      let ok = ref true in
      for r = 0 to m - 1 do
        let xr = Vec.create n 0. in
        Smat.solve_into ws rhs.(r) xr;
        for i = 0 to n - 1 do
          if bits x.{i, r} <> bits xr.(i) then ok := false
        done
      done;
      !ok)

let prop_min_degree_parity =
  QCheck.Test.make
    ~name:"min-degree ordered factorization agrees with dense to 1e-10"
    ~count:150 size_gen
    (fun ((nodes, branches), seed) ->
      let rng = Rng.create (Int64.of_int (seed + 53)) in
      let dense, sparse = random_mna_pair rng ~nodes ~branches in
      let n = Mat.rows dense in
      (* ground every node: a 1e-10 agreement across different
         elimination orders needs a well-conditioned system (isolated
         nodes see only the 1e-12 gmin and are condition-limited) *)
      for i = 0 to nodes - 1 do
        Mat.add_to dense i i 1.;
        Smat.add_to sparse i i 1.
      done;
      let perm = Smat.min_degree sparse in
      let permuted = Smat.permute_sym sparse ~perm in
      let ws = Smat.lu_workspace n in
      (match Smat.factor_in_place permuted ws with
      | exception Mat.Singular _ -> QCheck.assume_fail ()
      | () -> ());
      let b = random_rhs rng n in
      let bp = Array.init n (fun k -> b.(perm.(k))) in
      let yp = Vec.create n 0. in
      Smat.solve_into ws bp yp;
      let x_ordered = Vec.create n 0. in
      Array.iteri (fun k p -> x_ordered.(p) <- yp.(k)) perm;
      match Mat.solve dense b with
      | exception Mat.Singular _ -> QCheck.assume_fail ()
      | xd -> vec_close x_ordered xd)

(* ------------------------------------------------------------- units *)

let test_pattern_basics () =
  let a = Smat.create 3 [ (0, 0); (0, 2); (1, 1); (2, 0); (2, 2) ] in
  Alcotest.(check int) "size" 3 (Smat.size a);
  Alcotest.(check int) "nnz" 5 (Smat.nnz a);
  Smat.add_to a 0 2 4.5;
  Smat.add_to a 0 2 0.5;
  Alcotest.(check (float 0.)) "accumulated" 5. (Smat.get a 0 2);
  Alcotest.(check (float 0.)) "absent reads zero" 0. (Smat.get a 1 0);
  (match Smat.add_to a 1 0 1. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument outside the pattern");
  Smat.clear a;
  Alcotest.(check (float 0.)) "cleared" 0. (Smat.get a 0 2);
  Alcotest.(check int) "pattern survives clear" 5 (Smat.nnz a)

let test_dense_roundtrip () =
  let m = Mat.of_rows [| [| 2.; 0.; 1. |]; [| 0.; 3.; 0. |]; [| -1.; 0.; 4. |] |] in
  let s = Smat.of_dense m in
  let m' = Smat.to_dense s in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "(%d,%d)" i j)
        (Mat.get m i j) (Mat.get m' i j)
    done
  done;
  let v = [| 1.; -2.; 3. |] in
  Alcotest.(check (array (float 1e-15)))
    "mul_vec" (Mat.mul_vec m v) (Smat.mul_vec s v)

let test_singular_parity () =
  (* two identical voltage-source branch rows: structurally fine,
     numerically rank-deficient — both backends must report the same
     elimination step *)
  let stamps =
    [
      (0, 0, 1e-12); (1, 1, 1e-12);
      (0, 0, 0.5); (1, 1, 0.5); (0, 1, -0.5); (1, 0, -0.5);
      (0, 2, 1.); (2, 0, 1.); (1, 2, -1.); (2, 1, -1.);
      (0, 3, 1.); (3, 0, 1.); (1, 3, -1.); (3, 1, -1.);
    ]
  in
  let n = 4 in
  let dense = Mat.create n n in
  List.iter (fun (i, j, v) -> Mat.add_to dense i j v) stamps;
  let sparse =
    Smat.create n
      (List.init n (fun i -> (i, i)) @ List.map (fun (i, j, _) -> (i, j)) stamps)
  in
  List.iter (fun (i, j, v) -> Smat.add_to sparse i j v) stamps;
  let kd =
    match Mat.factor_in_place dense (Mat.lu_workspace n) with
    | exception Mat.Singular k -> k
    | () -> Alcotest.fail "dense: expected Singular"
  in
  let ks =
    match Smat.factor_in_place sparse (Smat.lu_workspace n) with
    | exception Mat.Singular k -> k
    | () -> Alcotest.fail "sparse: expected Singular"
  in
  Alcotest.(check int) "Singular payloads agree" kd ks

let test_refactor_guard_falls_back () =
  (* first factor swaps rows 0/1 (3 > 1); the new values put the pivot
     back on row 0, so the held order is stale and the guard must
     refuse the replay *)
  let s = Smat.create 2 [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  Smat.set s 0 0 1.;
  Smat.set s 0 1 2.;
  Smat.set s 1 0 3.;
  Smat.set s 1 1 4.;
  let ws = Smat.lu_workspace 2 in
  Smat.factor_in_place s ws;
  Alcotest.(check (array int)) "swapped pivots" [| 1; 0 |] (Smat.lu_pivots ws);
  Smat.set s 0 0 50.;
  Alcotest.(check bool) "guard refuses stale pivot order" false
    (Smat.refactor s ws);
  Smat.factor_in_place s ws;
  Alcotest.(check (array int)) "fresh pivots" [| 0; 1 |] (Smat.lu_pivots ws);
  let st = Smat.stats ws in
  Alcotest.(check int) "full factorizations" 2 st.Smat.full_factorizations;
  Alcotest.(check int) "no reuse" 0 st.Smat.pattern_reuses

let test_refactor_reuses_pattern () =
  let rng = Rng.create 77L in
  let _, sparse = random_mna_pair rng ~nodes:8 ~branches:2 in
  let ws = Smat.lu_workspace (Smat.size sparse) in
  Smat.factor_in_place sparse ws;
  Smat.add_to sparse 0 0 0.25;
  Alcotest.(check bool) "replay accepted" true (Smat.refactor sparse ws);
  let st = Smat.stats ws in
  Alcotest.(check int) "one full" 1 st.Smat.full_factorizations;
  Alcotest.(check int) "one reuse" 1 st.Smat.pattern_reuses;
  Alcotest.(check bool) "factor holds fill" true (st.Smat.factor_nnz > 0)

let test_lu_blit_roundtrip () =
  let rng = Rng.create 99L in
  let _, sparse = random_mna_pair rng ~nodes:7 ~branches:3 in
  let n = Smat.size sparse in
  let src = Smat.lu_workspace n in
  Smat.factor_in_place sparse src;
  let dst = Smat.lu_workspace n in
  Smat.lu_blit ~src ~dst;
  let b = random_rhs rng n in
  let x1 = Vec.create n 0. and x2 = Vec.create n 0. in
  Smat.solve_into src b x1;
  Smat.solve_into dst b x2;
  Alcotest.(check bool) "blit solves identically" true (vec_bits_equal x1 x2);
  (match Smat.lu_blit ~src ~dst:(Smat.lu_workspace (n + 1)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected size mismatch");
  match Smat.lu_blit ~src:(Smat.lu_workspace n) ~dst with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected unfactored source"

let arrow_matrix n =
  (* dense hub row/column: the worst case for natural-order elimination
     (eliminating the hub first fills the whole trailing block) *)
  let entries = ref [] in
  for i = 0 to n - 1 do
    entries := (i, i) :: (0, i) :: (i, 0) :: !entries
  done;
  let s = Smat.create n !entries in
  for i = 0 to n - 1 do
    Smat.set s i i 10.;
    if i > 0 then begin
      Smat.set s 0 i (-1.);
      Smat.set s i 0 (-1.)
    end
  done;
  s

let test_min_degree_reduces_fill () =
  let n = 40 in
  let s = arrow_matrix n in
  let natural = Smat.lu_workspace n in
  Smat.factor_in_place s natural;
  let perm = Smat.min_degree s in
  let ordered = Smat.lu_workspace n in
  Smat.factor_in_place (Smat.permute_sym s ~perm) ordered;
  let fn = (Smat.stats natural).Smat.factor_nnz in
  let fo = (Smat.stats ordered).Smat.factor_nnz in
  Alcotest.(check bool)
    (Printf.sprintf "ordered fill %d << natural fill %d" fo fn)
    true
    (fn > (n * n) / 2 && fo < 4 * n)

let test_workspace_validation () =
  let s = Smat.create 2 [ (0, 0); (1, 1) ] in
  Smat.set s 0 0 1.;
  Smat.set s 1 1 1.;
  let ws = Smat.lu_workspace 2 in
  let b = [| 1.; 2. |] in
  (match Smat.solve_into ws b (Vec.create 2 0.) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected unfactored rejection");
  Smat.factor_in_place s ws;
  (match Smat.solve_into ws b b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected aliasing rejection");
  match Smat.solve_into ws [| 1. |] (Vec.create 2 0.) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected dimension rejection"

(* --------------------------------------------------------- backend seam *)

(* End-to-end identity across the Mna backend seam: the same macro
   solved through [Mna.build ~backend] on both backends — nominal and
   with a fault impact restamped into the compiled workspace — must
   produce bit-identical operating points and identical Newton
   trajectories.  This is the contract BENCH_sparse.json gates at 100+
   nodes, pinned here on quick cases. *)
let test_backend_end_to_end_identity () =
  let solve backend nl restamp =
    let sys = Circuit.Mna.build ~backend nl in
    let ws = Circuit.Mna.workspace sys in
    Circuit.Dc.solve ~workspace:ws ?restamp sys ~time:`Dc
  in
  let check_macro ?restamp (macro : Macros.Macro.t) =
    let nl = macro.Macros.Macro.build Macros.Process.nominal in
    let d = solve Circuit.Mna.Dense nl restamp in
    let s = solve Circuit.Mna.Sparse nl restamp in
    let label suffix = macro.Macros.Macro.macro_name ^ " " ^ suffix in
    Alcotest.(check bool)
      (label "operating points bit-identical")
      true
      (vec_bits_equal d.Circuit.Dc.solution s.Circuit.Dc.solution);
    Alcotest.(check int)
      (label "newton iterations agree")
      d.Circuit.Dc.newton_iterations s.Circuit.Dc.newton_iterations;
    Alcotest.(check int)
      (label "factorization counts agree")
      d.Circuit.Dc.factorizations s.Circuit.Dc.factorizations;
    Alcotest.(check int)
      (label "dense path never replays a pattern")
      0 d.Circuit.Dc.pattern_reuses
  in
  check_macro (Macros.Filter_chain.sk_chain ~stages:8);
  check_macro (Macros.Filter_chain.ota_cascade ~stages:8);
  check_macro
    ~restamp:{ Circuit.Mna.stimulus = None; impact = Some ("r1a", 470.) }
    (Macros.Filter_chain.sk_chain ~stages:8)

(* Batched multi-fault solves against the sequential reference: a group
   of impacts on one bridge site must go through the blocked path and
   reproduce the per-fault sensitivities and deviations; a mixed-site
   group must be refused (None) so the caller falls back. *)
let test_batched_matches_sequential () =
  let macro = Macros.Filter_chain.sk_chain ~stages:4 in
  let n_levels = 3 in
  let config =
    Testgen.Test_config.create ~id:951 ~name:"Sparse batched parity"
      ~macro_type:macro.Macros.Macro.macro_type ~control_node:"in"
      ~params:
        [
          Testgen.Test_param.create ~name:"v" ~units:"V" ~lower:1.0 ~upper:4.0
            ~seed:2.0;
        ]
      ~analysis:
        (Testgen.Test_config.Dc_levels
           (fun v ->
             List.init n_levels (fun k ->
                 Circuit.Waveform.Dc (v.(0) +. (0.5 *. float_of_int k)))))
      ~returns:Testgen.Test_config.Per_component
      ~return_names:(List.init n_levels (Printf.sprintf "V(out)@%d"))
      ~accuracy_floor:(List.init n_levels (fun _ -> 1e-3))
      ~summary:"dc levels for the batched parity test"
  in
  let ev =
    Testgen.Evaluator.create ~backend:Circuit.Mna.Sparse config
      ~nominal:(Experiments.Setup.target_of_macro macro Macros.Process.nominal)
      ~box_model:(Testgen.Tolerance.floor_only config)
  in
  let base = Faults.Fault.bridge "in" "s2o" ~resistance:10e3 in
  let impacts = [ 10e3; 1e3; 200.; 47e3 ] in
  let faults = List.map (Faults.Fault.with_impact base) impacts in
  let values = Testgen.Test_param.seeds_of config.Testgen.Test_config.params in
  let batched =
    match Testgen.Evaluator.batched_sensitivities ev ~faults values with
    | Some rows -> rows
    | None -> Alcotest.fail "batched path refused a batchable plan"
  in
  Alcotest.(check int) "one row per fault" (List.length faults)
    (Array.length batched);
  List.iteri
    (fun i f ->
      let s_seq, dev_seq = Testgen.Evaluator.sensitivity_and_deviation ev f values in
      let s_bat, dev_bat = batched.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "impact %g sensitivity agrees" (List.nth impacts i))
        true
        (Float.abs (s_bat -. s_seq) <= 1e-9 *. (1. +. Float.abs s_seq));
      Alcotest.(check bool)
        (Printf.sprintf "impact %g deviations agree" (List.nth impacts i))
        true
        (Array.length dev_bat = Array.length dev_seq
        && vec_close ~eps:1e-9 dev_bat dev_seq))
    faults;
  let other_site = Faults.Fault.bridge "in" "s1o" ~resistance:10e3 in
  (match Testgen.Evaluator.batched_sensitivities ev ~faults:[ base; other_site ] values with
  | None -> ()
  | Some _ -> Alcotest.fail "mixed-site group must fall back");
  match Testgen.Evaluator.batched_sensitivities ev ~faults:[] values with
  | None -> ()
  | Some _ -> Alcotest.fail "empty group must fall back"

let () =
  Alcotest.run "sparse"
    [
      ( "smat",
        [
          Alcotest.test_case "pattern basics" `Quick test_pattern_basics;
          Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
          Alcotest.test_case "singular parity" `Quick test_singular_parity;
          Alcotest.test_case "workspace validation" `Quick
            test_workspace_validation;
          QCheck_alcotest.to_alcotest prop_factor_solve_parity;
          QCheck_alcotest.to_alcotest prop_pivot_parity;
        ] );
      ( "refactor",
        [
          Alcotest.test_case "guard falls back" `Quick
            test_refactor_guard_falls_back;
          Alcotest.test_case "pattern reuse" `Quick test_refactor_reuses_pattern;
          Alcotest.test_case "lu_blit" `Quick test_lu_blit_roundtrip;
          QCheck_alcotest.to_alcotest prop_refactor_bit_exact;
          QCheck_alcotest.to_alcotest prop_solve_block_parity;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "min-degree reduces arrow fill" `Quick
            test_min_degree_reduces_fill;
          QCheck_alcotest.to_alcotest prop_min_degree_parity;
        ] );
      ( "backend",
        [
          Alcotest.test_case "end-to-end identity" `Quick
            test_backend_end_to_end_identity;
          Alcotest.test_case "batched matches sequential" `Quick
            test_batched_matches_sequential;
        ] );
    ]
