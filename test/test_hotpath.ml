(* Compiled hot-path parity: the compile-once/restamp-many execution
   path must reproduce the legacy build-per-probe path bit for bit —
   per-arm observables, whole [Engine.run] records and session
   checkpoint bytes, with and without fault-impact overrides and
   failure injection — plus the dt_divisor decimation contract. *)

open Testgen
module Fp = Numerics.Failpoint

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let bits = Array.map Int64.bits_of_float

let check_bitwise msg expected got =
  Alcotest.(check (array int64)) msg (bits expected) (bits got)

let bridge = Faults.Fault.bridge "n1" "vout" ~resistance:10e3
let pinhole = Faults.Fault.pinhole "m6" ~r_shunt:2e3

let injected fault =
  {
    iv_target with
    Execute.netlist = Faults.Inject.apply iv_target.Execute.netlist fault;
  }

(* ------------------------------------------------- observables parity *)

(* Every analysis arm (DC levels, THD, step train, IMD, noise, AC), on
   the nominal topology and on a bridge and a pinhole topology: the
   compiled plan must reproduce the legacy per-probe rebuild bitwise. *)
let test_observables_parity () =
  let profile = Execute.fast_profile in
  List.iter
    (fun config ->
      let values = Test_param.seeds_of config.Test_config.params in
      let check_target label target impact =
        let legacy = Execute.observables ~profile config target values in
        let compiled =
          Execute.compiled_observables ~profile ?impact
            (Execute.compile config target)
            values
        in
        check_bitwise
          (Printf.sprintf "config %d %s" config.Test_config.config_id label)
          legacy compiled
      in
      check_target "nominal" iv_target None;
      check_target "bridge" (injected bridge)
        (Some (Faults.Inject.impact_override bridge));
      check_target "pinhole" (injected pinhole)
        (Some (Faults.Inject.impact_override pinhole)))
    Experiments.Iv_configs.all

(* One plan per fault site, restamped per impact: a plan compiled from
   the 10k bridge answers queries for the 3k bridge through the impact
   override alone, still matching a legacy run that injects 3k afresh. *)
let test_impact_restamp_parity () =
  let config = Experiments.Iv_configs.config1 in
  let values = Test_param.seeds_of config.Test_config.params in
  let plan = Execute.compile config (injected bridge) in
  List.iter
    (fun ohms ->
      let variant = Faults.Fault.with_impact bridge ohms in
      let legacy = Execute.observables config (injected variant) values in
      let compiled =
        Execute.compiled_observables
          ~impact:(Faults.Inject.impact_override variant)
          plan values
      in
      check_bitwise (Printf.sprintf "bridge at %g ohm" ohms) legacy compiled)
    [ 10e3; 3e3; 330.; 1e6 ]

(* The impact override must also reach the small-signal and noise
   stamps, where the resistor appears both in the system matrix and as a
   thermal-noise source. *)
let test_impact_reaches_noise_and_ac () =
  let values fault config =
    let v = Test_param.seeds_of config.Test_config.params in
    let legacy = Execute.observables config (injected fault) v in
    let compiled =
      Execute.compiled_observables
        ~impact:(Faults.Inject.impact_override fault)
        (Execute.compile config (injected fault))
        v
    in
    (legacy, compiled)
  in
  List.iter
    (fun config ->
      List.iter
        (fun fault ->
          let legacy, compiled = values fault config in
          check_bitwise
            (Printf.sprintf "config %d, fault %s" config.Test_config.config_id
               (Faults.Fault.id fault))
            legacy compiled)
        [ bridge; Faults.Fault.with_impact bridge 470.; pinhole ])
    [ Experiments.Iv_configs.config1 ]

(* ------------------------------------------------------ engine parity *)

let full_dictionary = Macros.Macro.dictionary Macros.Iv_converter.macro

let small_dictionary =
  Faults.Dictionary.of_faults
    [
      Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
      Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
      Faults.Fault.pinhole "m6" ~r_shunt:2e3;
    ]

let evaluator mode =
  let config = Experiments.Iv_configs.config1 in
  Evaluator.create ~mode config ~nominal:iv_target
    ~box_model:(Tolerance.floor_only config)

let outcome_label (o : Generate.result Resilience.outcome) =
  match o with
  | Resilience.Ok _ -> "ok"
  | Resilience.Recovered _ ->
      "recovered:" ^ Option.value ~default:"?" (Resilience.recovery_rung o)
  | Resilience.Failed d -> "failed:" ^ d.Resilience.diag_error

(* everything observable about a run except wall-clock time *)
let fingerprint (run : Engine.run) =
  ( Session.to_string run.Engine.results,
    List.map
      (fun (r : Engine.fault_report) ->
        (r.Engine.report_fault_id, outcome_label r.Engine.report_outcome))
      run.Engine.reports,
    run.Engine.rung_stats,
    run.Engine.recovered_count,
    run.Engine.total_fault_simulations,
    List.map (fun d -> d.Resilience.diag_fault_id) run.Engine.failed_faults )

let run_mode ?policy mode dictionary =
  Engine.run ?policy ~executor:Engine.sequential ~evaluators:[ evaluator mode ]
    dictionary

(* Full dictionary, sequential: the legacy and compiled evaluators must
   produce identical run records and identical session text — the bytes
   that checkpoints, --resume and report generation all consume. *)
let test_engine_parity () =
  let legacy = run_mode `Legacy full_dictionary in
  let compiled = run_mode `Compiled full_dictionary in
  Alcotest.(check int) "whole dictionary simulated"
    (Faults.Dictionary.size full_dictionary)
    (List.length compiled.Engine.results);
  Alcotest.(check bool) "run records identical" true
    (fingerprint legacy = fingerprint compiled);
  Alcotest.(check string) "session text identical"
    (Session.to_string legacy.Engine.results)
    (Session.to_string compiled.Engine.results)

(* A compiled parallel run against a legacy sequential run: compiled
   plans are domain-private (fork compiles its own), so the pool must
   not disturb parity either. *)
let test_engine_parity_parallel () =
  let legacy = run_mode `Legacy full_dictionary in
  let compiled =
    Engine.run
      ~executor:(Parallel.executor ~jobs:2)
      ~evaluators:[ evaluator `Compiled ]
      full_dictionary
  in
  Alcotest.(check bool) "legacy sequential = compiled pool" true
    (fingerprint legacy = fingerprint compiled)

(* Under probabilistic failure injection the two paths must draw the
   same failpoint sequence (same solve count, same Newton iteration
   counts), so recovery and quarantine patterns stay identical. *)
let test_engine_parity_injected () =
  let injected mode =
    Fp.with_failpoints ~seed:23L
      [
        {
          Fp.point = "dc.no_convergence";
          probability = 0.35;
          max_triggers = Some 2;
        };
        {
          Fp.point = "execute.observables";
          probability = 0.05;
          max_triggers = None;
        };
      ]
      (fun () -> run_mode mode small_dictionary)
  in
  let legacy = injected `Legacy in
  Alcotest.(check bool) "injection exercised the ladder" true
    (legacy.Engine.recovered_count > 0 || legacy.Engine.failed_faults <> []);
  Alcotest.(check bool) "injected runs identical" true
    (fingerprint legacy = fingerprint (injected `Compiled))

(* ------------------------------------------ continuation compatibility *)

(* Warm-start continuation is opt-in and scoped to ladder probes: on an
   evaluator created with ~continuation:true, optimizer-style probes
   (no [~continue]) must stay bit-identical to a plain compiled
   evaluator, and ladder probes ([~continue:true]) must agree within
   solver tolerance. *)
let test_continuation_probe_gating () =
  let config = Experiments.Iv_configs.config1 in
  let mk continuation =
    Evaluator.create ~mode:`Compiled ~continuation config ~nominal:iv_target
      ~box_model:(Tolerance.floor_only config)
  in
  let plain = mk false and cont = mk true in
  let values = Test_param.seeds_of config.Test_config.params in
  List.iter
    (fun ohms ->
      let f = Faults.Fault.with_impact bridge ohms in
      Alcotest.(check int64)
        (Printf.sprintf "optimizer probe at %g ohm bit-identical" ohms)
        (Int64.bits_of_float (Evaluator.sensitivity plain f values))
        (Int64.bits_of_float (Evaluator.sensitivity cont f values)))
    [ 10e3; 20e3; 40e3 ];
  List.iter
    (fun ohms ->
      let f = Faults.Fault.with_impact bridge ohms in
      let a = Evaluator.sensitivity plain f values in
      let b = Evaluator.sensitivity ~continue:true cont f values in
      Alcotest.(check bool)
        (Printf.sprintf "ladder probe at %g ohm within tolerance (%.3g vs %.3g)"
           ohms a b)
        true
        (Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs a)))
    [ 10e3; 20e3; 40e3; 80e3; 160e3 ]

let generate_result (r : Engine.fault_report) =
  match r.Engine.report_outcome with
  | Resilience.Ok g | Resilience.Recovered (g, _) -> Some g
  | Resilience.Failed _ -> None

(* End to end over the full dictionary: a continuation run must reach
   the same verdicts as the legacy path — same fault order, same winning
   configuration, same outcome flavour, and Unique critical impacts
   within the tolerance-identity band (ratio <= 1.25). *)
let test_engine_continuation_compatible () =
  let legacy = run_mode `Legacy full_dictionary in
  let config = Experiments.Iv_configs.config1 in
  let cont_ev =
    Evaluator.create ~mode:`Compiled ~continuation:true config
      ~nominal:iv_target ~box_model:(Tolerance.floor_only config)
  in
  let cont =
    Engine.run ~executor:Engine.sequential ~evaluators:[ cont_ev ]
      full_dictionary
  in
  Alcotest.(check int) "same report count"
    (List.length legacy.Engine.reports)
    (List.length cont.Engine.reports);
  List.iter2
    (fun (l : Engine.fault_report) (c : Engine.fault_report) ->
      Alcotest.(check string) "fault order" l.Engine.report_fault_id
        c.Engine.report_fault_id;
      match (generate_result l, generate_result c) with
      | Some gl, Some gc -> begin
          Alcotest.(check int)
            (Printf.sprintf "%s: winning config" l.Engine.report_fault_id)
            (Generate.best_config_id gl)
            (Generate.best_config_id gc);
          match (gl.Generate.outcome, gc.Generate.outcome) with
          | ( Generate.Unique { critical_impact = a; _ },
              Generate.Unique { critical_impact = b; _ } ) ->
              let ratio = Float.max (a /. b) (b /. a) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: critical impact ratio %.3f <= 1.25"
                   l.Engine.report_fault_id ratio)
                true (ratio <= 1.25)
          | Generate.Undetectable _, Generate.Undetectable _ -> ()
          | _ ->
              Alcotest.fail
                (l.Engine.report_fault_id ^ ": outcome flavour changed")
        end
      | None, None -> ()
      | _ ->
          Alcotest.fail (l.Engine.report_fault_id ^ ": failure pattern changed"))
    legacy.Engine.reports cont.Engine.reports

(* --------------------------------------------- dt_divisor decimation *)

(* Step-train configuration with an awkward tstop/dt ratio: the product
   test_time * sample_rate is not exactly representable, so the grid
   reconstruction must round, not truncate. *)
let decimation_config ~sample_rate ~test_time =
  Test_config.create ~id:99 ~name:"decimation probe"
    ~macro_type:"IV-converter" ~control_node:"Iin"
    ~params:
      [
        Test_param.create ~name:"elev" ~units:"A" ~lower:5e-6 ~upper:50e-6
          ~seed:25e-6;
      ]
    ~analysis:
      (Test_config.Tran_samples
         {
           stimulus =
             (fun v ->
               Circuit.Waveform.Step
                 { base = 0.; elev = v.(0); delay = 2e-7; rise = 1e-7 });
           sample_rate;
           test_time;
         })
    ~returns:Test_config.Max_abs_delta
    ~return_names:[ "Max_k |dV(Vout,t_k)|" ]
    ~accuracy_floor:[ 2e-3 ]
    ~summary:"decimation regression probe"

let test_decimation_grid () =
  List.iter
    (fun (sample_rate, test_time) ->
      let config = decimation_config ~sample_rate ~test_time in
      let values = Test_param.seeds_of config.Test_config.params in
      let with_divisor k =
        let profile = { Execute.default_profile with dt_divisor = k } in
        Execute.observables ~profile config iv_target values
      in
      let reference = with_divisor 1 in
      let expected_len =
        1 + int_of_float (Float.round (test_time *. sample_rate))
      in
      Alcotest.(check int)
        (Printf.sprintf "k=1 grid length at %g Hz x %g s" sample_rate test_time)
        expected_len (Array.length reference);
      List.iter
        (fun k ->
          let decimated = with_divisor k in
          Alcotest.(check int)
            (Printf.sprintf "k=%d grid length" k)
            (Array.length reference) (Array.length decimated);
          (* the t=0 sample is the DC operating point: independent of
             the integration step, so bitwise equal across divisors *)
          Alcotest.(check int64)
            (Printf.sprintf "k=%d initial sample" k)
            (Int64.bits_of_float reference.(0))
            (Int64.bits_of_float decimated.(0));
          (* endpoint alignment: with an exact divisor relationship the
             final decimated sample is the fine grid's final sample, at
             t = tstop *)
          Alcotest.(check bool)
            (Printf.sprintf "k=%d endpoint finite" k)
            true
            (Float.is_finite decimated.(Array.length decimated - 1)))
        [ 2; 3; 5 ])
    [ (100e6, 7.5e-6); (3.3e6, 1e-5); (7e6, 3e-6) ]

(* The decimated grid must agree sample-for-sample with an explicit
   fine-grid simulation read at every k-th point (the same subdivided
   step the profile induces, [dt /. k]). *)
let test_decimation_values () =
  let sample_rate = 3.3e6 and test_time = 1e-5 in
  let config = decimation_config ~sample_rate ~test_time in
  let values = Test_param.seeds_of config.Test_config.params in
  let k = 3 in
  let profile = { Execute.default_profile with dt_divisor = k } in
  let decimated = Execute.observables ~profile config iv_target values in
  let wave =
    Circuit.Waveform.Step
      { base = 0.; elev = values.(0); delay = 2e-7; rise = 1e-7 }
  in
  let nl =
    Execute.with_stimulus iv_target.Execute.netlist
      ~source:iv_target.Execute.stimulus_source wave
  in
  let sys = Circuit.Mna.build nl in
  let dt = 1. /. sample_rate in
  let result =
    Circuit.Tran.simulate ~options:Circuit.Dc.default_options sys
      ~tstop:test_time
      ~dt:(dt /. float_of_int k)
      ~observe:[ iv_target.Execute.observe_node ]
  in
  let fine = Circuit.Tran.probe_values result iv_target.Execute.observe_node in
  Alcotest.(check bool) "decimation drops samples" true
    (Array.length decimated < Array.length fine);
  Array.iteri
    (fun i coarse ->
      let j = Int.min (i * k) (Array.length fine - 1) in
      Alcotest.(check int64)
        (Printf.sprintf "sample %d" i)
        (Int64.bits_of_float fine.(j))
        (Int64.bits_of_float coarse))
    decimated

let () =
  Alcotest.run "hotpath"
    [
      ( "observables",
        [
          Alcotest.test_case "all arms, nominal + faults" `Quick
            test_observables_parity;
          Alcotest.test_case "impact restamp reuses one plan" `Quick
            test_impact_restamp_parity;
          Alcotest.test_case "impact reaches noise and AC" `Quick
            test_impact_reaches_noise_and_ac;
        ] );
      ( "engine",
        [
          Alcotest.test_case "full dictionary, sequential" `Quick
            test_engine_parity;
          Alcotest.test_case "compiled pool vs legacy sequential" `Quick
            test_engine_parity_parallel;
          Alcotest.test_case "under failure injection" `Quick
            test_engine_parity_injected;
        ] );
      ( "continuation",
        [
          Alcotest.test_case "probe gating" `Quick test_continuation_probe_gating;
          Alcotest.test_case "engine outcomes compatible" `Quick
            test_engine_continuation_compatible;
        ] );
      ( "decimation",
        [
          Alcotest.test_case "grid length and endpoints" `Quick
            test_decimation_grid;
          Alcotest.test_case "values match explicit fine grid" `Quick
            test_decimation_values;
        ] );
    ]
