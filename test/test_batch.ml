(* Config-major batched fault evaluation: bitwise parity with the
   sequential path.

   The contract under test is strict: every (sensitivity, deviation)
   pair the batch engine returns must carry the same bits as the
   sequential [Evaluator.sensitivity_and_deviation] call it replaced —
   across dense and sparse backends, through every rewired consumer
   (coverage, collapse screening, lattice seeding, whole engine runs),
   at every pool size, and under failure injection (where batching must
   decline and leave the sequential draw sequence untouched). *)

open Testgen
module Fp = Numerics.Failpoint

let bits = Int64.bits_of_float

let floats_equal a b = bits a = bits b

let dev_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (floats_equal x b.(i)) then ok := false) a;
      !ok)

(* Two independent probe contexts over the same macro: the batched one
   under test and a [~batching:false] twin as the sequential reference.
   Separate evaluators mean separate caches and counters, so neither
   path can warm the other. *)
let ladder = Macros.Rc_ladder.macro ~sections:4
let chain = Macros.Filter_chain.sk_chain ~stages:2

let ctx ?batching ?backend macro =
  Experiments.Setup.probe ?batching ?backend ~macro ()

let first_evaluator (c : Experiments.Setup.t) = List.hd c.evaluators

let some_faults ?(n = 10) (c : Experiments.Setup.t) =
  Faults.Dictionary.entries (Faults.Dictionary.take c.dictionary n)
  |> List.map (fun e -> e.Faults.Dictionary.fault)
  |> Array.of_list

(* Parameter points spread across the first configuration's box. *)
let points_of (c : Experiments.Setup.t) =
  let config = List.hd c.configs in
  match config.Test_config.params with
  | [ p ] ->
      let lo = p.Test_param.lower and hi = p.Test_param.upper in
      [| [| lo |]; [| 0.5 *. (lo +. hi) |]; [| hi |] |]
  | _ -> Alcotest.fail "probe context should have one parameter"

(* ------------------------------------------- cross-product parity *)

let test_cross_product_parity backend () =
  List.iter
    (fun macro ->
      let batched_ctx = ctx ~backend macro in
      let seq_ctx = ctx ~batching:false ~backend macro in
      let ev_b = first_evaluator batched_ctx in
      let ev_s = first_evaluator seq_ctx in
      let faults = some_faults batched_ctx in
      let points = points_of batched_ctx in
      let before = (Evaluator.batch_stats ()).Evaluator.faults_batched in
      let cells =
        match Evaluator.batched_fault_sensitivities ev_b ~faults ~points with
        | Some cells -> cells
        | None -> Alcotest.fail "linear probe plan should batch"
      in
      let after = (Evaluator.batch_stats ()).Evaluator.faults_batched in
      Alcotest.(check bool)
        "batch engine actually settled pairs" true
        (after - before > 0);
      Array.iteri
        (fun i fault ->
          Array.iteri
            (fun p values ->
              let s_b, dev_b = cells.(i).(p) in
              let s_s, dev_s =
                Evaluator.sensitivity_and_deviation ev_s fault values
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s sensitivity f%d p%d"
                   macro.Macros.Macro.macro_type i p)
                true (floats_equal s_b s_s);
              Alcotest.(check bool)
                (Printf.sprintf "%s deviations f%d p%d"
                   macro.Macros.Macro.macro_type i p)
                true
                (dev_equal dev_b dev_s))
            points)
        faults;
      (* identical evaluation accounting: one charge per pair *)
      Alcotest.(check int) "charges match the sequential walk"
        (Evaluator.evaluation_count ev_s)
        (Evaluator.evaluation_count ev_b))
    [ ladder; chain ]

(* Single-pair convenience wrapper: bit-identical to [sensitivity]. *)
let test_batched_sensitivity_parity () =
  let ev_b = first_evaluator (ctx ladder) in
  let ev_s = first_evaluator (ctx ~batching:false ladder) in
  let faults = some_faults (ctx ladder) in
  let points = points_of (ctx ladder) in
  Array.iter
    (fun fault ->
      Array.iter
        (fun values ->
          Alcotest.(check bool) "single-pair parity" true
            (floats_equal
               (Evaluator.batched_sensitivity ev_b fault values)
               (Evaluator.sensitivity ev_s fault values)))
        points)
    faults

(* ------------------------------------------------- decline gates *)

let test_decline_gates () =
  let faults = some_faults (ctx ladder) in
  let points = points_of (ctx ladder) in
  let declines label ev =
    Alcotest.(check bool) label true
      (Evaluator.batched_fault_sensitivities ev ~faults ~points = None)
  in
  declines "batching disabled"
    (first_evaluator (ctx ~batching:false ladder));
  declines "legacy mode"
    (first_evaluator (Experiments.Setup.probe ~mode:`Legacy ~macro:ladder ()));
  declines "continuation mode"
    (first_evaluator
       (Experiments.Setup.probe ~continuation:true ~macro:ladder ()));
  (* a MOSFET-bearing topology is outside the batchable family *)
  Alcotest.(check bool) "nonlinear topology" true
    (Evaluator.batched_fault_sensitivities
       (first_evaluator (Experiments.Setup.iv ()))
       ~faults:
         [| Faults.Fault.bridge "n1" "vout" ~resistance:10e3 |]
       ~points:
         [|
           Test_param.seeds_of
             (List.hd (Experiments.Setup.iv ()).configs).Test_config.params;
         |]
    = None);
  (* active failure injection must decline — batching would reorder the
     draw sequence *)
  Fp.with_failpoints ~seed:7L
    [ { Fp.point = "dc.no_convergence"; probability = 0.0; max_triggers = None } ]
    (fun () ->
      declines "failure injection active" (first_evaluator (ctx ladder)))

(* ------------------------------------------------ coverage parity *)

let seed_tests (c : Experiments.Setup.t) =
  List.map
    (fun (config : Test_config.t) ->
      {
        Coverage.test_label =
          Printf.sprintf "tc%d" config.Test_config.config_id;
        test_config_id = config.Test_config.config_id;
        test_params = Test_config.param_values_of_seed config;
      })
    c.configs

let coverage_fingerprint (r : Coverage.report) =
  List.map
    (fun (d : Coverage.detection) ->
      (d.Coverage.det_fault_id, d.Coverage.detected_by,
       bits d.Coverage.best_sensitivity))
    r.Coverage.detections

let test_coverage_parity backend () =
  let batched_ctx = ctx ~backend chain in
  let seq_ctx = ctx ~batching:false ~backend chain in
  let dictionary = Faults.Dictionary.take batched_ctx.dictionary 12 in
  let report_of (c : Experiments.Setup.t) =
    Coverage.evaluate ~evaluators:c.evaluators dictionary (seed_tests c)
  in
  let rb = report_of batched_ctx and rs = report_of seq_ctx in
  Alcotest.(check bool) "coverage reports identical" true
    (coverage_fingerprint rb = coverage_fingerprint rs);
  Alcotest.(check int) "covered counts identical" rs.Coverage.covered
    rb.Coverage.covered

(* ------------------------------------------- collapse-screen parity *)

let test_collapse_screen_parity () =
  let batched_ctx = ctx chain in
  let seq_ctx = ctx ~batching:false chain in
  let ev_b = first_evaluator batched_ctx in
  let ev_s = first_evaluator seq_ctx in
  let faults = some_faults ~n:6 batched_ctx in
  let seed =
    Test_config.param_values_of_seed (List.hd batched_ctx.configs)
  in
  let members ev =
    Array.to_list
      (Array.mapi
         (fun i fault ->
           {
             Collapse.member_fault_id = Faults.Fault.id fault ^ string_of_int i;
             member_fault = fault;
             member_params = seed;
             member_opt_sensitivity = Evaluator.sensitivity ev fault seed;
           })
         faults)
  in
  let screen ev ms delta =
    match Collapse.screen ev ~delta ms seed with
    | None -> None
    | Some sens -> Some (List.map (fun (id, s) -> (id, bits s)) sens)
  in
  (* both a permissive delta (full accepted walk) and a strict one
     (early-exit verdicts) must agree with the sequential screen *)
  List.iter
    (fun delta ->
      Alcotest.(check bool)
        (Printf.sprintf "screen verdicts identical at delta %g" delta)
        true
        (screen ev_b (members ev_b) delta = screen ev_s (members ev_s) delta))
    [ 1.0; 0.1; 0. ]

(* ------------------------------------------- lattice-seeding parity *)

(* A two-parameter linear configuration: the multi-parameter optimizer
   arm opens with a seed + lattice sweep, which is exactly the
   cross-product the batch engine takes over. *)
let two_param_config =
  Test_config.create ~id:901 ~name:"2-param batch probe"
    ~macro_type:ladder.Macros.Macro.macro_type
    ~control_node:ladder.Macros.Macro.stimulus_source
    ~params:
      [
        Test_param.create ~name:"v0" ~units:"V" ~lower:1.0 ~upper:4.0 ~seed:2.5;
        Test_param.create ~name:"v1" ~units:"V" ~lower:1.0 ~upper:4.0 ~seed:2.5;
      ]
    ~analysis:
      (Test_config.Dc_levels
         (fun v -> [ Circuit.Waveform.Dc v.(0); Circuit.Waveform.Dc v.(1) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(out)@0"; "V(out)@1" ]
    ~accuracy_floor:[ 1e-3; 1e-3 ]
    ~summary:"two independent dc levels"

let test_lattice_parity backend () =
  let nominal =
    Experiments.Setup.target_of_macro ladder Macros.Process.nominal
  in
  let make batching =
    Evaluator.create ~profile:Execute.fast_profile ~batching ~backend
      two_param_config ~nominal
      ~box_model:(Tolerance.floor_only two_param_config)
  in
  let fault =
    (List.hd (Faults.Dictionary.entries (Macros.Macro.dictionary ladder)))
      .Faults.Dictionary.fault
  in
  let candidate ev =
    Generate.optimize_candidate ~options:Experiments.Setup.probe_options ev
      fault
  in
  let cb = candidate (make true) and cs = candidate (make false) in
  Alcotest.(check bool) "winning params identical" true
    (dev_equal cb.Generate.cand_params cs.Generate.cand_params);
  Alcotest.(check bool) "optimized cost identical" true
    (floats_equal cb.Generate.low_impact_sensitivity
       cs.Generate.low_impact_sensitivity);
  Alcotest.(check int) "optimizer evaluation accounting identical"
    cs.Generate.optimizer_evaluations cb.Generate.optimizer_evaluations

(* ------------------------------------------------ engine-run parity *)

let fingerprint (run : Engine.run) =
  ( Session.to_string run.Engine.results,
    run.Engine.rung_stats,
    run.Engine.recovered_count,
    run.Engine.total_fault_simulations,
    List.map (fun d -> d.Resilience.diag_fault_id) run.Engine.failed_faults )

let engine_run ?executor (c : Experiments.Setup.t) n_faults =
  let c = Experiments.Setup.reduced c ~n_faults in
  Engine.run ~options:Experiments.Setup.probe_options ?executor
    ~evaluators:c.evaluators c.dictionary

(* Generation, compaction and baseline with batching on vs off: the
   session bytes (what checkpoints, --resume and reports consume), the
   compaction verdicts and the baseline comparisons must be identical on
   both backends. *)
let test_end_to_end_parity backend () =
  let run_b = engine_run (ctx ~backend chain) 8 in
  let run_s = engine_run (ctx ~batching:false ~backend chain) 8 in
  Alcotest.(check bool) "engine runs identical" true
    (fingerprint run_b = fingerprint run_s);
  let cb = ctx ~backend chain and cs = ctx ~batching:false ~backend chain in
  let compact (c : Experiments.Setup.t) run =
    let r =
      Compactor.compact ~evaluators:c.evaluators
        (Faults.Dictionary.take c.dictionary 8)
        run
    in
    ( List.map
        (fun t -> (t.Compactor.ct_label, t.Compactor.ct_fault_ids))
        r.Compactor.compact_tests,
      coverage_fingerprint r.Compactor.coverage )
  in
  Alcotest.(check bool) "compaction identical" true
    (compact cb run_b = compact cs run_s);
  let baseline (c : Experiments.Setup.t) run =
    let s =
      Baseline.compare ~evaluators:c.evaluators
        (Faults.Dictionary.take c.dictionary 8)
        run
    in
    List.map
      (fun cmp ->
        ( cmp.Baseline.cmp_fault_id,
          cmp.Baseline.seed_detects,
          bits cmp.Baseline.seed_best_sensitivity,
          Option.map bits cmp.Baseline.seed_critical_impact ))
      s.Baseline.comparisons
  in
  Alcotest.(check bool) "baseline identical" true
    (baseline cb run_b = baseline cs run_s)

(* Pool sizes: the batch engine lives below the evaluator fork/absorb
   seam, so parallel runs must keep producing the sequential bytes. *)
let env_jobs =
  match Sys.getenv_opt "ATPG_TEST_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let job_counts = List.sort_uniq Int.compare ([ 1; 4 ] @ Option.to_list env_jobs)

let test_jobs_parity () =
  let reference = engine_run (ctx chain) 6 in
  List.iter
    (fun jobs ->
      let pooled =
        engine_run ~executor:(Parallel.executor ~jobs) (ctx chain) 6
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d identical to sequential" jobs)
        true
        (fingerprint pooled = fingerprint reference))
    job_counts

(* Failure injection: batching declines, so the injected draw sequence —
   and with it recovery and quarantine patterns — is the sequential one. *)
let test_injected_parity () =
  let injected batching =
    Fp.with_failpoints ~seed:23L
      [
        {
          Fp.point = "dc.no_convergence";
          probability = 0.35;
          max_triggers = Some 2;
        };
        {
          Fp.point = "execute.observables";
          probability = 0.05;
          max_triggers = None;
        };
      ]
      (fun () -> engine_run (ctx ~batching ladder) 6)
  in
  let run_s = injected false in
  Alcotest.(check bool) "injected runs identical" true
    (fingerprint (injected true) = fingerprint run_s)

let () =
  let backends = [ ("dense", Circuit.Mna.Dense); ("sparse", Circuit.Mna.Sparse) ] in
  let per_backend name f =
    List.map
      (fun (bname, backend) ->
        Alcotest.test_case (Printf.sprintf "%s (%s)" name bname) `Quick
          (f backend))
      backends
  in
  Alcotest.run "batch"
    [
      ( "parity",
        per_backend "cross-product bitwise parity" test_cross_product_parity
        @ [
            Alcotest.test_case "single-pair wrapper" `Quick
              test_batched_sensitivity_parity;
          ] );
      ( "gates",
        [ Alcotest.test_case "decline conditions" `Quick test_decline_gates ] );
      ("coverage", per_backend "report parity" test_coverage_parity);
      ( "collapse",
        [
          Alcotest.test_case "screen verdict parity" `Quick
            test_collapse_screen_parity;
        ] );
      ("lattice", per_backend "seed-scan parity" test_lattice_parity);
      ( "end-to-end",
        per_backend "generate/compact/baseline parity" test_end_to_end_parity
        @ [
            Alcotest.test_case "pool-size parity" `Quick test_jobs_parity;
            Alcotest.test_case "under failure injection" `Quick
              test_injected_parity;
          ] );
    ]
