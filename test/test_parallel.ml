(* Sequential/parallel parity: the Domain-pool executor must reproduce
   the sequential engine's run record bit for bit — same fault ordering,
   same rung statistics, same session-checkpoint bytes — at every job
   count, with and without failure injection, and across a mid-run kill
   plus resume. *)

open Testgen
module Fp = Numerics.Failpoint

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let fresh_dc_evaluator () =
  let config = Experiments.Iv_configs.config1 in
  Evaluator.create config ~nominal:iv_target
    ~box_model:(Tolerance.floor_only config)

(* The paper's full 55-fault IV-converter dictionary; one cheap DC
   configuration keeps the repeated whole-dictionary runs fast. *)
let full_dictionary = Macros.Macro.dictionary Macros.Iv_converter.macro

(* a small dictionary for the expensive many-variation tests *)
let small_faults =
  [
    Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
    Faults.Fault.bridge "n2" "vout" ~resistance:10e3;
    Faults.Fault.bridge "iin" "n1" ~resistance:10e3;
    Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
    Faults.Fault.pinhole "m6" ~r_shunt:2e3;
  ]

let small_dictionary = Faults.Dictionary.of_faults small_faults

(* CI exercises the suite at several pool sizes via ATPG_TEST_JOBS; the
   {1, 2, 4} ladder of the parity contract is always included. *)
let env_jobs =
  match Sys.getenv_opt "ATPG_TEST_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let job_counts = List.sort_uniq Int.compare ([ 1; 2; 4 ] @ Option.to_list env_jobs)

let executor_of jobs =
  if jobs = 0 then Engine.sequential else Parallel.executor ~jobs

let outcome_label (o : Generate.result Resilience.outcome) =
  match o with
  | Resilience.Ok _ -> "ok"
  | Resilience.Recovered _ ->
      "recovered:" ^ Option.value ~default:"?" (Resilience.recovery_rung o)
  | Resilience.Failed d -> "failed:" ^ d.Resilience.diag_error

(* everything observable about a run except wall-clock time *)
let fingerprint (run : Engine.run) =
  ( Session.to_string run.Engine.results,
    List.map
      (fun (r : Engine.fault_report) ->
        (r.Engine.report_fault_id, outcome_label r.Engine.report_outcome))
      run.Engine.reports,
    run.Engine.rung_stats,
    run.Engine.recovered_count,
    run.Engine.resumed_count,
    run.Engine.total_fault_simulations,
    List.map (fun d -> d.Resilience.diag_fault_id) run.Engine.failed_faults )

let run_dict ?policy ?resume ?checkpoint dictionary jobs =
  Engine.run ?policy ?resume ?checkpoint ~executor:(executor_of jobs)
    ~evaluators:[ fresh_dc_evaluator () ] dictionary

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let with_temp_file f =
  let path = Filename.temp_file "atpg-parallel" ".session" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let checkpointed_run ?policy ?resume ?prior_file dictionary jobs =
  with_temp_file (fun path ->
      (match prior_file with
      | Some text ->
          let oc = open_out_bin path in
          output_string oc text;
          close_out oc
      | None ->
          (* temp_file leaves an empty file behind; resume wants either a
             valid session or nothing at all *)
          Sys.remove path);
      match Session.checkpoint_resume ~path with
      | Error m -> Alcotest.fail m
      | Ok (ck, salvaged) ->
          let resume =
            match resume with Some r -> r | None -> salvaged
          in
          let run =
            Fun.protect
              ~finally:(fun () -> Session.checkpoint_close ck)
              (fun () ->
                run_dict ?policy ~resume
                  ~checkpoint:(Session.checkpoint_append ck) dictionary jobs)
          in
          (run, read_file path))

(* ------------------------------------------------------------ parity *)

let test_full_dictionary_parity () =
  let reference, ref_bytes = checkpointed_run full_dictionary 0 in
  let ref_fp = fingerprint reference in
  Alcotest.(check int) "whole dictionary simulated"
    (Faults.Dictionary.size full_dictionary)
    (List.length reference.Engine.results);
  List.iter
    (fun jobs ->
      let run, bytes = checkpointed_run full_dictionary jobs in
      Alcotest.(check bool)
        (Printf.sprintf "run record identical at --jobs %d" jobs)
        true
        (fingerprint run = ref_fp);
      Alcotest.(check string)
        (Printf.sprintf "session bytes identical at --jobs %d" jobs)
        ref_bytes bytes)
    job_counts

let test_parity_under_injection () =
  (* probabilistic injection with per-fault trigger caps: the recovery
     ladder engages for some faults and quarantines others, and the
     whole pattern must be identical at every job count *)
  let injected jobs =
    Fp.with_failpoints ~seed:23L
      [
        {
          Fp.point = "dc.no_convergence";
          probability = 0.35;
          max_triggers = Some 2;
        };
        { Fp.point = "execute.observables"; probability = 0.05; max_triggers = None };
      ]
      (fun () -> run_dict small_dictionary jobs)
  in
  let reference = injected 0 in
  let ref_fp = fingerprint reference in
  Alcotest.(check bool) "injection exercised the ladder" true
    (reference.Engine.recovered_count > 0
    || reference.Engine.failed_faults <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "injected run identical at --jobs %d" jobs)
        true
        (fingerprint (injected jobs) = ref_fp))
    job_counts

let test_kill_and_resume_across_job_counts () =
  (* a run killed after k faults (mid-write of fault k+1) and resumed at
     a different job count must refill the checkpoint to the exact bytes
     of an uninterrupted sequential run *)
  let reference, ref_bytes = checkpointed_run full_dictionary 0 in
  let killed_after = 20 in
  let torn_prefix =
    Session.to_string
      (List.filteri (fun i _ -> i < killed_after) reference.Engine.results)
    ^ "result bridge:torn\nfault bridge a b 1000\ncandidate 1 0.5"
  in
  List.iter
    (fun jobs ->
      let run, bytes =
        checkpointed_run ~prior_file:torn_prefix full_dictionary jobs
      in
      Alcotest.(check int)
        (Printf.sprintf "salvaged faults resumed at --jobs %d" jobs)
        killed_after run.Engine.resumed_count;
      Alcotest.(check string)
        (Printf.sprintf "resumed file byte-identical at --jobs %d" jobs)
        ref_bytes bytes;
      Alcotest.(check string)
        (Printf.sprintf "resumed results identical at --jobs %d" jobs)
        (Session.to_string reference.Engine.results)
        (Session.to_string run.Engine.results))
    job_counts

let test_fail_fast_parallel () =
  (* fail-fast under a pool: the funnel aborts on the lowest-index
     unrecoverable fault, outstanding work is cancelled and every domain
     joined before the exception escapes *)
  Fp.with_failpoints [ Fp.fail_always "dc.no_convergence" ] (fun () ->
      let policy =
        { Resilience.default_policy with Resilience.fail_fast = true }
      in
      List.iter
        (fun jobs ->
          try
            ignore (run_dict ~policy small_dictionary jobs);
            Alcotest.fail "fail-fast pool did not abort"
          with Engine.Fault_failure d ->
            Alcotest.(check string)
              (Printf.sprintf "aborted on the first fault at --jobs %d" jobs)
              "bridge:n1-vout" d.Resilience.diag_fault_id)
        job_counts)

(* ------------------------------------- QCheck merge/fan-out properties *)

let prop_fan_out_complete_and_ordered =
  QCheck.Test.make
    ~name:"fan_out emits every index exactly once, in increasing order"
    ~count:100
    QCheck.(pair (int_range 0 64) (int_range 1 8))
    (fun (n, jobs) ->
      let emitted = ref [] in
      Parallel.fan_out ~jobs
        ~make_ctx:(fun () -> ())
        ~f:(fun () i -> i * i)
        ~emit:(fun i v -> emitted := (i, v) :: !emitted)
        n;
      List.rev !emitted = List.init n (fun i -> (i, i * i)))

let prop_map_ordered_is_mapi =
  QCheck.Test.make ~name:"map_ordered agrees with List.mapi" ~count:100
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (l, jobs) ->
      Parallel.map_ordered ~jobs (fun i x -> (i, x + 1)) l
      = List.mapi (fun i x -> (i, x + 1)) l)

(* a placeholder generation result for synthetic reports: rung_stats
   only inspects the outcome shape and rung labels *)
let dummy_result fid =
  {
    Generate.fault_id = fid;
    dictionary_fault = Faults.Fault.bridge "a" "b" ~resistance:1e3;
    candidates = [];
    outcome =
      Generate.Undetectable
        {
          most_sensitive_config = 1;
          params = [| 0. |];
          best_sensitivity = 0.;
          strongest_impact = 1e3;
        };
    trace = [];
  }

let ladder_labels =
  List.map
    (fun (r : Resilience.rung) -> r.Resilience.rung_label)
    Resilience.default_policy.Resilience.ladder

(* code 0 = Ok, 1..|ladder| = recovered on that rung, else quarantined *)
let report_of_code i code =
  let fid = Printf.sprintf "f%d" i in
  let outcome =
    if code = 0 then Resilience.Ok (dummy_result fid)
    else if code <= List.length ladder_labels then
      let winner = List.nth ladder_labels (code - 1) in
      Resilience.Recovered
        ( dummy_result fid,
          [
            {
              Resilience.attempt_rung = Resilience.baseline_label;
              attempt_error = Some "synthetic";
            };
            { Resilience.attempt_rung = winner; attempt_error = None };
          ] )
    else
      Resilience.Failed
        {
          Resilience.diag_fault_id = fid;
          diag_attempts = [];
          diag_error = "synthetic";
        }
  in
  { Engine.report_fault_id = fid; report_outcome = outcome }

let prop_rung_stats_no_double_count =
  QCheck.Test.make
    ~name:
      "rung_stats: every non-quarantined outcome counted exactly once, on \
       its own rung" ~count:200
    QCheck.(list (int_range 0 5))
    (fun codes ->
      let policy = Resilience.default_policy in
      let reports = List.mapi report_of_code codes in
      let stats = Engine.rung_stats_of_reports ~policy reports in
      let count p = List.length (List.filter p codes) in
      List.map fst stats = (Resilience.baseline_label :: ladder_labels)
      && List.fold_left (fun a (_, n) -> a + n) 0 stats
         = count (fun c -> c <= List.length ladder_labels)
      && List.assoc Resilience.baseline_label stats = count (fun c -> c = 0)
      && List.for_all
           (fun (i, label) -> List.assoc label stats = count (fun c -> c = i + 1))
           (List.mapi (fun i l -> (i, l)) ladder_labels))

let prop_engine_subset_parity =
  (* arbitrary fault subsets at arbitrary worker counts reproduce the
     sequential merge: dictionary order kept, no outcome lost *)
  QCheck.Test.make ~name:"engine parity on arbitrary fault subsets" ~count:6
    QCheck.(pair (int_range 1 31) (int_range 2 5))
    (fun (mask, jobs) ->
      let subset =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) small_faults
      in
      let dict = Faults.Dictionary.of_faults subset in
      fingerprint (run_dict dict 0) = fingerprint (run_dict dict jobs))

(* --------------------------------------------- domain-safety regressions *)

let test_rng_streams_never_interleave () =
  (* two domains drawing concurrently from distinct named streams see
     exactly the sequences a single thread would *)
  let draws key n =
    let r = Numerics.Rng.of_key ~seed:99L ~key in
    List.init n (fun _ -> Numerics.Rng.float r)
  in
  let n = 20_000 in
  let expect_a = draws "alpha" n and expect_b = draws "beta" n in
  let da = Domain.spawn (fun () -> draws "alpha" n) in
  let db = Domain.spawn (fun () -> draws "beta" n) in
  let got_a = Domain.join da and got_b = Domain.join db in
  Alcotest.(check bool) "streams are distinct" true (expect_a <> expect_b);
  Alcotest.(check bool) "domain A unperturbed" true (got_a = expect_a);
  Alcotest.(check bool) "domain B unperturbed" true (got_b = expect_b)

let test_failpoint_domains_never_interleave () =
  (* concurrent scoped querying from two domains reproduces each scope's
     single-threaded failure pattern — per-domain site tables, no shared
     counters or streams.  [with_failpoints] is domain-local, so a raw
     spawn carries the configuration across as a snapshot, exactly as
     Parallel.fan_out does for its workers. *)
  Fp.with_failpoints ~seed:5L
    [ { Fp.point = "p"; probability = 0.5; max_triggers = Some 100 } ]
    (fun () ->
      let pattern scope n =
        Fp.with_scope ~key:scope (fun () ->
            let fired = List.init n (fun _ -> Fp.should_fail "p") in
            (fired, Fp.query_count "p", Fp.trigger_count "p"))
      in
      let n = 512 in
      let expect_a = pattern "fault-a" n and expect_b = pattern "fault-b" n in
      let snap = Fp.snapshot () in
      let da =
        Domain.spawn (fun () ->
            Fp.with_snapshot snap (fun () -> pattern "fault-a" n))
      in
      let db =
        Domain.spawn (fun () ->
            Fp.with_snapshot snap (fun () -> pattern "fault-b" n))
      in
      let got_a = Domain.join da and got_b = Domain.join db in
      let fired (f, _, _) = f in
      Alcotest.(check bool) "scopes are distinct" true
        (fired expect_a <> fired expect_b);
      Alcotest.(check bool) "scope A unperturbed by domain B" true
        (got_a = expect_a);
      Alcotest.(check bool) "scope B unperturbed by domain A" true
        (got_b = expect_b);
      let _, queries_a, triggers_a = expect_a in
      Alcotest.(check int) "per-scope queries counted" n queries_a;
      Alcotest.(check int) "per-scope trigger cap honoured" 100 triggers_a)

let test_fan_out_lowest_failure_wins () =
  (* when several tasks raise, the exception that escapes is the one of
     the lowest task index — failure is deterministic under scheduling *)
  match
    Parallel.fan_out ~jobs:4
      ~make_ctx:(fun () -> ())
      ~f:(fun () i -> if i >= 3 then failwith (string_of_int i) else i)
      ~emit:(fun _ _ -> ())
      16
  with
  | () -> Alcotest.fail "expected a failure"
  | exception Failure m -> Alcotest.(check string) "lowest index" "3" m

let test_emit_abort_joins_domains () =
  (* an exception thrown by emit (the engine's fail-fast path) cancels
     outstanding work and joins the pool; remaining emits never happen *)
  let emitted = ref [] in
  (match
     Parallel.fan_out ~jobs:4
       ~make_ctx:(fun () -> ())
       ~f:(fun () i -> i)
       ~emit:(fun i _ ->
         if i = 2 then failwith "stop" else emitted := i :: !emitted)
       64
   with
  | () -> Alcotest.fail "expected the abort to propagate"
  | exception Failure m -> Alcotest.(check string) "abort reason" "stop" m);
  Alcotest.(check (list int)) "prefix emitted in order" [ 0; 1 ]
    (List.rev !emitted)

let () =
  Alcotest.run "parallel"
    [
      ( "parity",
        [
          Alcotest.test_case "full dictionary, jobs {1,2,4}" `Slow
            test_full_dictionary_parity;
          Alcotest.test_case "under failure injection" `Slow
            test_parity_under_injection;
          Alcotest.test_case "kill + resume across job counts" `Slow
            test_kill_and_resume_across_job_counts;
          Alcotest.test_case "fail-fast in a pool" `Quick
            test_fail_fast_parallel;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_fan_out_complete_and_ordered;
          QCheck_alcotest.to_alcotest prop_map_ordered_is_mapi;
          QCheck_alcotest.to_alcotest prop_rung_stats_no_double_count;
          QCheck_alcotest.to_alcotest prop_engine_subset_parity;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "rng streams never interleave" `Quick
            test_rng_streams_never_interleave;
          Alcotest.test_case "failpoint scopes never interleave" `Quick
            test_failpoint_domains_never_interleave;
          Alcotest.test_case "lowest failure wins" `Quick
            test_fan_out_lowest_failure_wins;
          Alcotest.test_case "emit abort joins the pool" `Quick
            test_emit_abort_joins_domains;
        ] );
    ]
