(* Tests for session persistence, the quality estimator and DC sweeps. *)

open Testgen

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* ---------------------------------------------------------------- session *)

let sample_results =
  [
    {
      Generate.fault_id = "bridge:a-b";
      dictionary_fault = Faults.Fault.bridge "a" "b" ~resistance:10e3;
      candidates =
        [
          {
            Generate.cand_config_id = 1;
            cand_params = [| 1.25e-5 |];
            low_impact_sensitivity = -3.5;
            optimizer_evaluations = 42;
          };
          {
            Generate.cand_config_id = 2;
            cand_params = [| -2e-6; 1e-5 |];
            low_impact_sensitivity = 0.25;
            optimizer_evaluations = 77;
          };
        ];
      outcome =
        Generate.Unique
          {
            config_id = 1;
            params = [| 1.25e-5 |];
            critical_impact = 123456.789;
            dictionary_sensitivity = -12.5;
          };
      trace =
        [
          { Generate.impact = 10e3; detecting = [ 1; 2 ] };
          { Generate.impact = 20e3; detecting = [ 1 ] };
          { Generate.impact = 40e3; detecting = [] };
        ];
    };
    {
      Generate.fault_id = "pinhole:m3";
      dictionary_fault = Faults.Fault.pinhole "m3" ~r_shunt:2e3;
      candidates = [];
      outcome =
        Generate.Undetectable
          {
            most_sensitive_config = 2;
            params = [| 0.; 5e-6 |];
            best_sensitivity = 0.75;
            strongest_impact = 10.;
          };
      trace = [];
    };
  ]

let results_equal (a : Generate.result) (b : Generate.result) =
  a.Generate.fault_id = b.Generate.fault_id
  && a.Generate.dictionary_fault = b.Generate.dictionary_fault
  && a.Generate.candidates = b.Generate.candidates
  && a.Generate.outcome = b.Generate.outcome
  && a.Generate.trace = b.Generate.trace

let test_session_roundtrip () =
  let text = Session.to_string sample_results in
  match Session.of_string text with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      Alcotest.(check int) "count" 2 (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (a.Generate.fault_id ^ " roundtrips") true
            (results_equal a b))
        sample_results loaded

let test_session_file_roundtrip () =
  let path = Filename.temp_file "atpg" ".session" in
  (match Session.save ~path sample_results with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Session.load ~path with
  | Ok loaded -> Alcotest.(check int) "count" 2 (List.length loaded)
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_session_errors () =
  (match Session.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  (match Session.of_string "atpg-session 99\n" with
  | Error m ->
      Alcotest.(check bool) "version message" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "bad version accepted");
  (match Session.of_string "atpg-session 1\ncandidate 1 2 3 | 4\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "orphan line accepted");
  match Session.of_string "atpg-session 1\nresult x\nfault bridge a b 1\nend\n" with
  | Error _ -> ()  (* missing outcome *)
  | Ok _ -> Alcotest.fail "missing outcome accepted"

let prop_session_roundtrip =
  QCheck.Test.make ~name:"session roundtrip on random results" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 9)) in
      let u lo hi = Numerics.Rng.uniform rng ~lo ~hi in
      let vec n = Array.init n (fun _ -> u (-1e-3) 1e-3) in
      let fault =
        if Numerics.Rng.int rng ~bound:2 = 0 then
          Faults.Fault.bridge "na" "nb" ~resistance:(u 1. 1e6)
        else Faults.Fault.pinhole "mx" ~r_shunt:(u 1. 1e6)
      in
      let outcome =
        if Numerics.Rng.int rng ~bound:2 = 0 then
          Generate.Unique
            {
              config_id = 1 + Numerics.Rng.int rng ~bound:5;
              params = vec (1 + Numerics.Rng.int rng ~bound:2);
              critical_impact = u 1. 1e7;
              dictionary_sensitivity = u (-1e3) 1.;
            }
        else
          Generate.Undetectable
            {
              most_sensitive_config = 1 + Numerics.Rng.int rng ~bound:5;
              params = vec (1 + Numerics.Rng.int rng ~bound:2);
              best_sensitivity = u 0. 1.;
              strongest_impact = u 1. 1e4;
            }
      in
      let r =
        {
          Generate.fault_id = Faults.Fault.id fault;
          dictionary_fault = fault;
          candidates =
            List.init (Numerics.Rng.int rng ~bound:3) (fun i ->
                {
                  Generate.cand_config_id = i + 1;
                  cand_params = vec 2;
                  low_impact_sensitivity = u (-10.) 1.;
                  optimizer_evaluations = Numerics.Rng.int rng ~bound:500;
                });
          outcome;
          trace =
            List.init (Numerics.Rng.int rng ~bound:4) (fun _ ->
                {
                  Generate.impact = u 1. 1e6;
                  detecting =
                    List.init (Numerics.Rng.int rng ~bound:3) (fun i -> i + 1);
                });
        }
      in
      match Session.of_string (Session.to_string [ r ]) with
      | Ok [ loaded ] -> results_equal r loaded
      | Ok _ | Error _ -> false)

(* ------------------------------------------------------------- corruption *)

(* Every corruption mode a mid-write kill or bit rot can leave behind
   must fail the strict loader with a diagnostic naming the damage, and
   the lenient loader must recover exactly the trailer-verified prefix. *)

let with_file text f =
  let path = Filename.temp_file "atpg-corrupt" ".session" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      f path)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.equal (String.sub hay i ln) needle || at (i + 1)) in
  at 0

let check_load_fails ~mode text ~diag =
  with_file text (fun path ->
      match Session.load ~path with
      | Ok _ -> Alcotest.fail (mode ^ ": strict load accepted corrupt file")
      | Error m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: diagnostic %S mentions %S" mode m diag)
            true (contains m diag))

let check_salvage ~mode text expected_count =
  with_file text (fun path ->
      match Session.load_partial ~path with
      | Error m -> Alcotest.fail (Printf.sprintf "%s: salvage failed: %s" mode m)
      | Ok rs ->
          Alcotest.(check int)
            (mode ^ ": salvaged block count")
            expected_count (List.length rs))

let checkpoint_text = lazy (Session.to_checkpoint_string sample_results)
let one_block_text = lazy (Session.to_checkpoint_string [ List.hd sample_results ])

let test_corrupt_zero_length () =
  check_load_fails ~mode:"zero-length" "" ~diag:"empty";
  (* a zero-length file holds zero trustworthy blocks, not an error *)
  check_salvage ~mode:"zero-length" "" 0

let test_corrupt_bad_header () =
  check_load_fails ~mode:"bad version" "atpg-session 99\n" ~diag:"version";
  check_load_fails ~mode:"not a session" "totally not a session\n"
    ~diag:"not an atpg session"

let test_corrupt_truncated_mid_block () =
  let full = Lazy.force checkpoint_text in
  let one = Lazy.force one_block_text in
  (* kill landed while block 2's payload was being written: nothing after
     block 1's trailer can be trusted *)
  let torn = String.sub full 0 (String.length one + 25) in
  check_load_fails ~mode:"truncated" torn ~diag:"torn checkpoint";
  check_salvage ~mode:"truncated" torn 1

let test_corrupt_torn_trailer () =
  let full = Lazy.force checkpoint_text in
  (* kill landed inside the final trailer line itself *)
  let torn = String.sub full 0 (String.length full - 4) in
  check_load_fails ~mode:"torn trailer" torn ~diag:"torn checkpoint trailer";
  check_salvage ~mode:"torn trailer" torn 1

let test_corrupt_flipped_byte () =
  let full = Lazy.force checkpoint_text in
  let one = Lazy.force one_block_text in
  let b = Bytes.of_string full in
  (* flip a byte inside block 2's payload: the trailer's CRC must catch it *)
  let pos = String.length one + 10 in
  Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
  let corrupt = Bytes.to_string b in
  check_load_fails ~mode:"flipped byte" corrupt ~diag:"checksum mismatch";
  check_salvage ~mode:"flipped byte" corrupt 1

let test_corrupt_length_mismatch () =
  let full = Lazy.force checkpoint_text in
  (* corrupt the length field of the last block's trailer: same digit
     count, so every byte offset is preserved and only the recorded
     length disagrees with the block *)
  let d = String.rindex full '#' + 4 in
  let b = Bytes.of_string full in
  Bytes.set b d (if Bytes.get b d = '9' then '8' else '9');
  let corrupt = Bytes.to_string b in
  check_load_fails ~mode:"length mismatch" corrupt ~diag:"mismatch";
  check_salvage ~mode:"length mismatch" corrupt 1

let test_checkpoint_text_loads_as_session () =
  (* trailers are comments to the plain parser: a checkpoint file is a
     valid session file with identical content *)
  match Session.of_string (Lazy.force checkpoint_text) with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      Alcotest.(check int) "both blocks" 2 (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (a.Generate.fault_id ^ " roundtrips") true
            (results_equal a b))
        sample_results loaded

(* ---------------------------------------------------------------- quality *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let corner_targets =
  List.map
    (Experiments.Setup.target_of_macro Macros.Iv_converter.macro)
    [
      { Macros.Process.nominal with Macros.Process.label = "res+"; dres = 0.15 };
      { Macros.Process.nominal with Macros.Process.label = "res-"; dres = -0.15 };
    ]

let quality_evaluator =
  lazy
    (Evaluator.create Experiments.Iv_configs.config1 ~nominal:iv_target
       ~box_model:
         (Tolerance.calibrate Experiments.Iv_configs.config1
            ~nominal:iv_target ~corners:corner_targets ~grid:2 ()))

let quality_tests =
  [
    { Coverage.test_label = "t1"; test_config_id = 1; test_params = [| 25e-6 |] };
  ]

let test_quality_estimate () =
  let rng = Numerics.Rng.create 77L in
  let fault_free =
    List.map
      (Experiments.Setup.target_of_macro Macros.Iv_converter.macro)
      (Macros.Process.monte_carlo rng ~n:20)
  in
  let dict =
    Faults.Dictionary.of_faults
      [
        Faults.Fault.bridge "n1" "vout" ~resistance:10e3;  (* detected *)
        Faults.Fault.bridge "0" "vdd" ~resistance:10e3;  (* escapes *)
      ]
  in
  let e =
    Quality.estimate
      ~evaluators:[ Lazy.force quality_evaluator ]
      ~tests:quality_tests ~fault_free ~dictionary:dict ()
  in
  Alcotest.(check int) "samples" 20 e.Quality.fault_free_samples;
  (* the calibrated box contains 3-sigma MC samples almost surely *)
  Alcotest.(check bool)
    (Printf.sprintf "low overkill (%.2f)" e.Quality.overkill_rate)
    true
    (e.Quality.overkill_rate <= 0.15);
  check_float "escape = half of uniform weight" 0.5 e.Quality.escape_rate;
  Alcotest.(check bool) "margin positive" true (e.Quality.worst_sample_margin > 0.)

let test_quality_weighted_escape () =
  let dict =
    Faults.Dictionary.of_faults
      [
        Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
        Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
      ]
  in
  let e =
    Quality.estimate
      ~evaluators:[ Lazy.force quality_evaluator ]
      ~tests:quality_tests ~fault_free:[ iv_target ] ~dictionary:dict
      ~weights:[ ("bridge:n1-vout", 9.); ("bridge:0-vdd", 1.) ]
      ()
  in
  check_float ~eps:1e-6 "weighted escape" 0.1 e.Quality.escape_rate

let test_quality_report_string () =
  let e =
    {
      Quality.overkill_rate = 0.01;
      escape_rate = 0.05;
      fault_free_samples = 100;
      worst_sample_margin = 0.8;
    }
  in
  let s = Quality.report e in
  Alcotest.(check bool) "mentions overkill" true
    (String.length s > 0 && String.index_opt s '%' <> None)

(* ------------------------------------------------------------------ sweep *)

let test_linspace () =
  let xs = Circuit.Sweep.linspace ~lo:0. ~hi:1. ~points:5 in
  Alcotest.(check (array (float 1e-12))) "grid" [| 0.; 0.25; 0.5; 0.75; 1. |] xs

let test_dc_transfer_iv () =
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let result =
    Circuit.Sweep.dc_transfer nl ~source:"iin_src"
      ~sweep_values:(Circuit.Sweep.linspace ~lo:(-50e-6) ~hi:50e-6 ~points:21)
      ~observe:[ "vout"; "iin" ]
  in
  let vout = Circuit.Sweep.trace result "vout" in
  (* monotone decreasing transfer *)
  let monotone = ref true in
  for i = 0 to Array.length vout - 2 do
    if vout.(i + 1) >= vout.(i) then monotone := false
  done;
  Alcotest.(check bool) "monotone decreasing" true !monotone;
  (* slope at 0 = -Rf *)
  let slope = Circuit.Sweep.slope_at result ~node:"vout" ~at:0. in
  Alcotest.(check bool)
    (Printf.sprintf "transimpedance %.0f ~ -20k" slope)
    true
    (Float.abs (slope +. 20e3) < 300.)

let test_sweep_errors () =
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  (try
     ignore
       (Circuit.Sweep.dc_transfer nl ~source:"rf" ~sweep_values:[| 0. |]
          ~observe:[]);
     Alcotest.fail "non-source accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Circuit.Sweep.dc_transfer nl ~source:"iin_src" ~sweep_values:[||]
          ~observe:[]);
     Alcotest.fail "empty sweep accepted"
   with Invalid_argument _ -> ())

let () =
  Alcotest.run "persistence"
    [
      ( "session",
        [
          Alcotest.test_case "roundtrip" `Quick test_session_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_session_file_roundtrip;
          Alcotest.test_case "errors" `Quick test_session_errors;
          QCheck_alcotest.to_alcotest prop_session_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "zero-length file" `Quick test_corrupt_zero_length;
          Alcotest.test_case "bad header" `Quick test_corrupt_bad_header;
          Alcotest.test_case "truncated mid-block" `Quick
            test_corrupt_truncated_mid_block;
          Alcotest.test_case "torn trailer" `Quick test_corrupt_torn_trailer;
          Alcotest.test_case "flipped byte" `Quick test_corrupt_flipped_byte;
          Alcotest.test_case "length mismatch" `Quick
            test_corrupt_length_mismatch;
          Alcotest.test_case "checkpoint loads as session" `Quick
            test_checkpoint_text_loads_as_session;
        ] );
      ( "quality",
        [
          Alcotest.test_case "estimate" `Quick test_quality_estimate;
          Alcotest.test_case "weighted escape" `Quick test_quality_weighted_escape;
          Alcotest.test_case "report" `Quick test_quality_report_string;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "iv transfer curve" `Quick test_dc_transfer_iv;
          Alcotest.test_case "errors" `Quick test_sweep_errors;
        ] );
    ]
