(* Tests for the ASCII reporting library. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ Table *)

let test_table_render () =
  let t =
    Report.Table.create
      ~headers:[ ("name", Report.Table.Left); ("count", Report.Table.Right) ]
  in
  Report.Table.add_row t [ "alpha"; "1" ];
  Report.Table.add_row t [ "b"; "20" ];
  let s = Report.Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: row1 :: row2 :: _ ->
      Alcotest.(check string) "header" "name   count" header;
      Alcotest.(check string) "rule" "-----  -----" rule;
      Alcotest.(check string) "left align" "alpha      1" row1;
      Alcotest.(check string) "right align" "b         20" row2
  | _ -> Alcotest.fail "unexpected line count")

let test_table_width_mismatch () =
  let t = Report.Table.create ~headers:[ ("a", Report.Table.Left) ] in
  (try
     Report.Table.add_row t [ "x"; "y" ];
     Alcotest.fail "mismatch accepted"
   with Invalid_argument _ -> ())

let test_table_rule () =
  let t = Report.Table.create ~headers:[ ("a", Report.Table.Left) ] in
  Report.Table.add_row t [ "x" ];
  Report.Table.add_rule t;
  Report.Table.add_row t [ "y" ];
  let s = Report.Table.render t in
  Alcotest.(check int) "five lines + trailing" 6
    (List.length (String.split_on_char '\n' s))

let test_table_of_rows () =
  let s =
    Report.Table.of_rows ~headers:[ ("h", Report.Table.Left) ] [ [ "v" ] ]
  in
  Alcotest.(check bool) "has header" true (contains s "h");
  Alcotest.(check bool) "has value" true (contains s "v")

(* ---------------------------------------------------------------- Heatmap *)

let test_heatmap_buckets () =
  (* buckets are ordered; strongly negative maps to '#' *)
  let g =
    Report.Heatmap.render
      ~x_axis:("x", [| 0.; 1. |])
      ~y_axis:("y", [| 0.; 1. |])
      ~values:(fun xi yi -> if xi = 0 && yi = 0 then -2000. else 0.4)
      ()
  in
  Alcotest.(check bool) "deep detection glyph" true (contains g "#");
  Alcotest.(check bool) "legend present" true (contains g "legend:");
  Alcotest.(check bool) "axis names present" true (contains g "x" && contains g "y")

let test_heatmap_1d () =
  let s =
    Report.Heatmap.render_1d ~x_axis:("p", [| 0.; 1.; 2. |])
      ~values:[| 0.; 1.; 0.5 |] ~height:5
  in
  Alcotest.(check bool) "bars drawn" true (contains s "*");
  Alcotest.(check bool) "axis label" true (contains s "p: 0 .. 2")

let test_heatmap_1d_errors () =
  (try
     ignore
       (Report.Heatmap.render_1d ~x_axis:("p", [| 0. |]) ~values:[| 0.; 1. |]
          ~height:5);
     Alcotest.fail "length mismatch accepted"
   with Invalid_argument _ -> ())

let contains_nan s =
  let l = String.lowercase_ascii s in
  let n = String.length l in
  let rec go i =
    if i + 3 > n then false
    else if String.sub l i 3 = "nan" then true
    else go (i + 1)
  in
  go 0

let test_heatmap_1d_flat_values () =
  (* all-equal values used to divide by a zero span and print NaN bars *)
  let s =
    Report.Heatmap.render_1d ~x_axis:("p", [| 0.; 1.; 2. |])
      ~values:[| 0.7; 0.7; 0.7 |] ~height:5
  in
  Alcotest.(check bool) "no NaN leaks into the chart" false (contains_nan s);
  Alcotest.(check bool) "bars still drawn" true (contains s "*")

let test_heatmap_1d_nonfinite_values () =
  let s =
    Report.Heatmap.render_1d ~x_axis:("p", [| 0.; 1.; 2. |])
      ~values:[| Float.nan; 1.; Float.infinity |] ~height:5
  in
  Alcotest.(check bool) "non-finite samples render" false (contains_nan s)

(* ---------------------------------------------------------------- Scatter *)

let test_scatter_basic () =
  let s =
    Report.Scatter.render ~x_label:"x" ~y_label:"y" ~x_range:(0., 1.)
      ~y_range:(0., 1.)
      [ { Report.Scatter.series_glyph = 'o'; points = [ (0.5, 0.5) ] } ]
  in
  Alcotest.(check bool) "point drawn" true (contains s "o");
  Alcotest.(check bool) "x label" true (contains s "x: 0 .. 1")

let test_scatter_out_of_range_dropped () =
  let s =
    Report.Scatter.render ~x_label:"x" ~y_label:"y" ~x_range:(0., 1.)
      ~y_range:(0., 1.)
      [ { Report.Scatter.series_glyph = 'o'; points = [ (5., 5.) ] } ]
  in
  Alcotest.(check bool) "no point drawn" false (contains s "o")

let test_scatter_invalid_range () =
  (try
     ignore
       (Report.Scatter.render ~x_label:"x" ~y_label:"y" ~x_range:(1., 0.)
          ~y_range:(0., 1.) []);
     Alcotest.fail "inverted range accepted"
   with Invalid_argument _ -> ())

let test_scatter_collapsed_range () =
  (* a single-valued axis (lo = hi) is legal: points land at index 0
     instead of dividing by a zero span *)
  let s =
    Report.Scatter.render ~x_label:"x" ~y_label:"y" ~x_range:(0.5, 0.5)
      ~y_range:(0., 1.)
      [ { Report.Scatter.series_glyph = 'o'; points = [ (0.5, 0.5) ] } ]
  in
  Alcotest.(check bool) "point still drawn" true (contains s "o");
  Alcotest.(check bool) "no NaN in the chart" false (contains_nan s)

let test_scatter_1d_collapsed_range () =
  let s =
    Report.Scatter.render_1d ~width:10 ~label:"p" ~range:(2., 2.) [ 2.; 2. ]
  in
  Alcotest.(check bool) "both points counted" true (contains s "2");
  Alcotest.(check bool) "no NaN in the strip" false (contains_nan s)

let test_scatter_1d_counts () =
  let s =
    Report.Scatter.render_1d ~width:10 ~label:"p" ~range:(0., 1.)
      [ 0.; 0.; 0.; 1. ]
  in
  (* three points at the left edge -> digit 3 *)
  Alcotest.(check bool) "count digit" true (contains s "3");
  Alcotest.(check bool) "single point digit" true (contains s "1")

(* ------------------------------------------------------------ Provenance *)

(* One process, one provenance block: every BENCH_*.json written by a
   benchmark run embeds Provenance.json (), so byte-identity across
   calls is exactly the "all artifacts carry identical provenance"
   contract. *)
let test_provenance_memoized () =
  let a = Report.Provenance.json () in
  let b = Report.Provenance.json () in
  Alcotest.(check string) "repeated calls byte-identical" a b;
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (contains a key))
    [ "\"git_sha\""; "\"generated_utc\""; "\"host_cores\"" ];
  (* the memoized block embeds the unmemoized primitive's answer *)
  Alcotest.(check bool) "sha embedded" true
    (contains a (Report.Provenance.git_sha ()))

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render/align" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "rules" `Quick test_table_rule;
          Alcotest.test_case "of_rows" `Quick test_table_of_rows;
        ] );
      ( "heatmap",
        [
          Alcotest.test_case "buckets and legend" `Quick test_heatmap_buckets;
          Alcotest.test_case "1d bars" `Quick test_heatmap_1d;
          Alcotest.test_case "1d errors" `Quick test_heatmap_1d_errors;
          Alcotest.test_case "1d flat values" `Quick test_heatmap_1d_flat_values;
          Alcotest.test_case "1d non-finite values" `Quick
            test_heatmap_1d_nonfinite_values;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "basic" `Quick test_scatter_basic;
          Alcotest.test_case "out of range" `Quick test_scatter_out_of_range_dropped;
          Alcotest.test_case "invalid range" `Quick test_scatter_invalid_range;
          Alcotest.test_case "collapsed axis" `Quick test_scatter_collapsed_range;
          Alcotest.test_case "1d strip counts" `Quick test_scatter_1d_counts;
          Alcotest.test_case "1d collapsed range" `Quick
            test_scatter_1d_collapsed_range;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "memoized and well-formed" `Quick
            test_provenance_memoized;
        ] );
    ]
