(* Tests for the core test-generation library (parameters, configurations,
   execution, tolerance boxes, sensitivity, tps-graphs, generation). *)

open Testgen

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* ------------------------------------------------------------- Test_param *)

let test_param_create () =
  let p = Test_param.create ~name:"lev" ~units:"A" ~lower:(-1.) ~upper:1. ~seed:0.5 in
  check_float "normalize mid" 0.75 (Test_param.normalize p 0.5);
  check_float "denormalize" 0.5 (Test_param.denormalize p 0.75);
  check_float "clamp high" 1. (Test_param.clamp p 7.);
  check_float "clamp low" (-1.) (Test_param.clamp p (-7.));
  check_float "normalize clamps" 1. (Test_param.normalize p 99.)

let test_param_validation () =
  (try
     ignore (Test_param.create ~name:"x" ~units:"" ~lower:1. ~upper:0. ~seed:0.5);
     Alcotest.fail "inverted bounds accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:1. ~seed:2.);
     Alcotest.fail "out-of-bounds seed accepted"
   with Invalid_argument _ -> ())

let test_param_bounds_of () =
  let ps =
    [
      Test_param.create ~name:"a" ~units:"" ~lower:0. ~upper:1. ~seed:0.1;
      Test_param.create ~name:"b" ~units:"" ~lower:(-2.) ~upper:2. ~seed:1.;
    ]
  in
  let lower, upper = Test_param.bounds_of ps in
  Alcotest.(check (array (float 1e-12))) "lower" [| 0.; -2. |] lower;
  Alcotest.(check (array (float 1e-12))) "upper" [| 1.; 2. |] upper;
  Alcotest.(check (array (float 1e-12))) "seeds" [| 0.1; 1. |]
    (Test_param.seeds_of ps)

(* ------------------------------------------------------------ Test_config *)

let test_config_validation () =
  let p = Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:1. ~seed:0.5 in
  let dc = Test_config.Dc_levels (fun v -> [ Circuit.Waveform.Dc v.(0) ]) in
  (try
     ignore
       (Test_config.create ~id:1 ~name:"n" ~macro_type:"m" ~control_node:"c"
          ~params:[] ~analysis:dc ~returns:Test_config.Per_component
          ~return_names:[ "r" ] ~accuracy_floor:[ 1. ] ~summary:"");
     Alcotest.fail "no params accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Test_config.create ~id:1 ~name:"n" ~macro_type:"m" ~control_node:"c"
          ~params:[ p ] ~analysis:dc ~returns:Test_config.Per_component
          ~return_names:[ "r" ] ~accuracy_floor:[ 1.; 2. ] ~summary:"");
     Alcotest.fail "floor mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Test_config.create ~id:1 ~name:"n" ~macro_type:"m" ~control_node:"c"
          ~params:[ p ] ~analysis:dc ~returns:Test_config.Per_component
          ~return_names:[ "r" ] ~accuracy_floor:[ -1. ] ~summary:"");
     Alcotest.fail "negative floor accepted"
   with Invalid_argument _ -> ())

let test_config_describe () =
  let d = Test_config.describe Experiments.Iv_configs.config5 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "macro type" true (contains d "IV-converter");
  Alcotest.(check bool) "sample rate" true (contains d "100Meg");
  Alcotest.(check bool) "parameters listed" true (contains d "elev")

(* ---------------------------------------------------------------- Execute *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let test_with_stimulus () =
  let nl =
    Execute.with_stimulus iv_target.Execute.netlist ~source:"iin_src"
      (Circuit.Waveform.Dc 1e-6)
  in
  (match Circuit.Netlist.find nl "iin_src" with
  | Some (Circuit.Device.Isource { wave = Circuit.Waveform.Dc v; _ }) ->
      check_float "waveform replaced" 1e-6 v
  | Some _ | None -> Alcotest.fail "stimulus not replaced");
  (try
     ignore
       (Execute.with_stimulus iv_target.Execute.netlist ~source:"rf"
          (Circuit.Waveform.Dc 0.));
     Alcotest.fail "non-source accepted"
   with Invalid_argument _ -> ())

let test_observables_dc () =
  let obs =
    Execute.observables Experiments.Iv_configs.config1 iv_target [| 10e-6 |]
  in
  Alcotest.(check int) "one value" 1 (Array.length obs);
  check_float ~eps:1e-2 "vout = 2.5 - 0.2" 2.3 obs.(0)

let test_observables_dc_pair () =
  let obs =
    Execute.observables Experiments.Iv_configs.config2 iv_target
      [| 0.; 20e-6 |]
  in
  Alcotest.(check int) "two values" 2 (Array.length obs);
  check_float ~eps:1e-2 "base" 2.5 obs.(0);
  check_float ~eps:1e-2 "elevated" 2.1 obs.(1)

let test_observables_thd () =
  let obs =
    Execute.observables ~profile:Execute.fast_profile
      Experiments.Iv_configs.config3 iv_target [| 20e-6; 10e3 |]
  in
  Alcotest.(check int) "one THD value" 1 (Array.length obs);
  Alcotest.(check bool)
    (Printf.sprintf "nominal THD %.5f%% is tiny" obs.(0))
    true
    (obs.(0) >= 0. && obs.(0) < 0.01)

let test_observables_step_train () =
  let obs =
    Execute.observables Experiments.Iv_configs.config4 iv_target [| 25e-6 |]
  in
  (* 7.5 us at 100 MHz -> 750 steps + the initial sample *)
  Alcotest.(check int) "sample count" 751 (Array.length obs);
  check_float ~eps:1e-2 "starts at the nominal level" 2.5 obs.(0)

let test_observables_param_mismatch () =
  (try
     ignore (Execute.observables Experiments.Iv_configs.config1 iv_target [| 0.; 0. |]);
     Alcotest.fail "wrong arity accepted"
   with Invalid_argument _ -> ())

let test_deviations_modes () =
  let dc = Experiments.Iv_configs.config2 in
  Alcotest.(check (array (float 1e-12)))
    "per-component"
    [| 0.5; -1. |]
    (Execute.deviations dc ~nominal:[| 1.; 3. |] ~faulty:[| 1.5; 2. |]);
  let maxd = Experiments.Iv_configs.config4 in
  Alcotest.(check (array (float 1e-12)))
    "max abs delta" [| 2. |]
    (Execute.deviations maxd ~nominal:[| 0.; 1.; 0. |] ~faulty:[| 1.; 3.; 0. |]);
  let sumd = Experiments.Iv_configs.config5 in
  Alcotest.(check (array (float 1e-12)))
    "sum abs delta" [| 3. |]
    (Execute.deviations sumd ~nominal:[| 0.; 1.; 0. |] ~faulty:[| 1.; 3.; 0. |])

let test_return_values () =
  let maxd = Experiments.Iv_configs.config4 in
  Alcotest.(check (array (float 1e-12)))
    "delta mode returns metric" [| 2. |]
    (Execute.return_values maxd ~nominal:[| 0.; 1. |] ~observed:[| 1.; 3. |]);
  let dc = Experiments.Iv_configs.config1 in
  Alcotest.(check (array (float 1e-12)))
    "per-component returns observable" [| 7. |]
    (Execute.return_values dc ~nominal:[| 1. |] ~observed:[| 7. |])

(* ------------------------------------------------------------ Sensitivity *)

let test_sensitivity_algebra () =
  check_float "no deviation" 1. (Sensitivity.of_deviation ~deviation:0. ~box:2.);
  check_float "at the box edge" 0. (Sensitivity.of_deviation ~deviation:2. ~box:2.);
  check_float "outside" (-1.) (Sensitivity.of_deviation ~deviation:4. ~box:2.);
  check_float "sign-insensitive" (-1.)
    (Sensitivity.of_deviation ~deviation:(-4.) ~box:2.);
  check_float "combine = min" (-3.) (Sensitivity.combine [| 0.5; -3.; 1. |]);
  Alcotest.(check bool) "detects" true (Sensitivity.detects (-0.01));
  Alcotest.(check bool) "no detect at 0" false (Sensitivity.detects 0.);
  (try
     ignore (Sensitivity.of_deviation ~deviation:1. ~box:0.);
     Alcotest.fail "zero box accepted"
   with Invalid_argument _ -> ())

let test_sensitivity_compute () =
  let config = Experiments.Iv_configs.config2 in
  let s =
    Sensitivity.compute config ~box:[| 0.1; 0.1 |] ~nominal:[| 1.; 1. |]
      ~faulty:[| 1.05; 1.4 |]
  in
  (* components: 1 - 0.5 = 0.5 and 1 - 4 = -3; min is -3 *)
  check_float "min over returns" (-3.) s

(* -------------------------------------------------------------- Tolerance *)

let test_floor_only_box () =
  let model = Tolerance.floor_only Experiments.Iv_configs.config1 in
  let b = Tolerance.box model [| 0. |] in
  Alcotest.(check (array (float 1e-12))) "floor" [| 1e-3 |] b

let corner_targets =
  List.map
    (Experiments.Setup.target_of_macro Macros.Iv_converter.macro)
    [
      { Macros.Process.nominal with Macros.Process.label = "res+"; dres = 0.15 };
      { Macros.Process.nominal with Macros.Process.label = "res-"; dres = -0.15 };
      { Macros.Process.nominal with Macros.Process.label = "vt+"; dvt_n = 0.05 };
    ]

let calibrated_config1 =
  lazy
    (Tolerance.calibrate Experiments.Iv_configs.config1 ~nominal:iv_target
       ~corners:corner_targets ~grid:3 ~guardband:1.25 ())

let test_calibrate_respects_floor () =
  let model = Lazy.force calibrated_config1 in
  (* at lev = 0 the response barely depends on R tolerance: floor rules *)
  let b = Tolerance.box model [| 0. |] in
  Alcotest.(check bool) "box >= floor" true (b.(0) >= 1e-3)

let test_calibrate_scales_with_level () =
  let model = Lazy.force calibrated_config1 in
  let b_small = (Tolerance.box model [| 5e-6 |]).(0) in
  let b_large = (Tolerance.box model [| 45e-6 |]).(0) in
  (* Rf tolerance makes the box grow with |Iin| *)
  Alcotest.(check bool)
    (Printf.sprintf "box grows with level (%.4g < %.4g)" b_small b_large)
    true (b_small < b_large)

let test_calibrate_interpolation_between_lattice () =
  let model = Lazy.force calibrated_config1 in
  let b_mid = (Tolerance.box model [| 12.5e-6 |]).(0) in
  let b_lo = (Tolerance.box model [| 0e-6 |]).(0) in
  let b_hi = (Tolerance.box model [| 25e-6 |]).(0) in
  Alcotest.(check bool) "between neighbours" true
    (b_mid >= Float.min b_lo b_hi -. 1e-12
    && b_mid <= Float.max b_lo b_hi +. 1e-12)

let test_calibrate_clamps_outside () =
  let model = Lazy.force calibrated_config1 in
  let inside = (Tolerance.box model [| 50e-6 |]).(0) in
  let outside = (Tolerance.box model [| 500e-6 |]).(0) in
  check_float "clamped to hull" inside outside

let test_lattice_points () =
  let model = Lazy.force calibrated_config1 in
  Alcotest.(check int) "3 lattice points" 3
    (List.length (Tolerance.lattice_points model))

let test_calibrate_validation () =
  (try
     ignore
       (Tolerance.calibrate Experiments.Iv_configs.config1 ~nominal:iv_target
          ~corners:[] ());
     Alcotest.fail "no corners accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Tolerance.calibrate Experiments.Iv_configs.config1 ~nominal:iv_target
          ~corners:corner_targets ~grid:1 ());
     Alcotest.fail "grid 1 accepted"
   with Invalid_argument _ -> ())

(* -------------------------------------------------------------- Evaluator *)

let evaluator_config1 =
  lazy
    (Evaluator.create Experiments.Iv_configs.config1 ~nominal:iv_target
       ~box_model:(Lazy.force calibrated_config1))

let test_evaluator_memoization () =
  let ev = Lazy.force evaluator_config1 in
  let v = [| 10e-6 |] in
  let a = Evaluator.nominal_observables ev v in
  let b = Evaluator.nominal_observables ev v in
  Alcotest.(check bool) "same cached array" true (a == b)

let test_evaluator_detects_strong_fault () =
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let s = Evaluator.sensitivity ev fault [| 10e-6 |] in
  Alcotest.(check bool) (Printf.sprintf "S = %.2f < 0" s) true
    (Sensitivity.detects s)

let test_evaluator_ignores_weak_fault () =
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:1e9 in
  let s = Evaluator.sensitivity ev fault [| 10e-6 |] in
  Alcotest.(check bool) (Printf.sprintf "S = %.2f > 0" s) true (s > 0.)

let test_evaluator_counts () =
  let ev =
    Evaluator.create Experiments.Iv_configs.config1 ~nominal:iv_target
      ~box_model:(Tolerance.floor_only Experiments.Iv_configs.config1)
  in
  let before = Evaluator.evaluation_count ev in
  ignore
    (Evaluator.sensitivity ev
       (Faults.Fault.bridge "n1" "vout" ~resistance:10e3)
       [| 10e-6 |]);
  Alcotest.(check int) "one faulty simulation" (before + 1)
    (Evaluator.evaluation_count ev)

let test_evaluator_deviation_report () =
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let s, dev = Evaluator.sensitivity_and_deviation ev fault [| 10e-6 |] in
  Alcotest.(check int) "deviation per return value" 1 (Array.length dev);
  Alcotest.(check bool) "consistent sign" true (s < 0. && Float.abs dev.(0) > 0.)

(* -------------------------------------------------------------------- Tps *)

let test_tps_sweep_1d () =
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "ntail" "vout" ~resistance:10e3 in
  let g = Tps.sweep ev fault ~grid:7 () in
  Alcotest.(check int) "7 samples" 7 (Array.length g.Tps.values);
  let arg, s = Tps.argmin g in
  Alcotest.(check int) "1-d argmin" 1 (Array.length arg);
  Alcotest.(check bool) "argmin is the minimum" true
    (Array.for_all (fun v -> v >= s) g.Tps.values);
  let frac = Tps.detection_fraction g in
  Alcotest.(check bool) "fraction in [0,1]" true (frac >= 0. && frac <= 1.)

let test_tps_value_at () =
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "ntail" "vout" ~resistance:10e3 in
  let g = Tps.sweep ev fault ~grid:5 () in
  check_float "value_at matches array" g.Tps.values.(2) (Tps.value_at g [| 2 |]);
  (try
     ignore (Tps.value_at g [| 9 |]);
     Alcotest.fail "range error accepted"
   with Invalid_argument _ -> ())

let test_tps_classify_soft () =
  (* DC response to a bridge scales smoothly with impact: argmin stable *)
  let ev = Lazy.force evaluator_config1 in
  let fault = Faults.Fault.bridge "n2" "vout" ~resistance:10e3 in
  let c = Tps.classify_region ev fault ~grid:7 () in
  Alcotest.(check bool) "classified soft" true (c.Tps.region = `Soft);
  Alcotest.(check int) "two shifts" 2 (Array.length c.Tps.shifts)

(* --------------------------------------------------------------- Generate *)

let dc_evaluators =
  lazy
    (let mk config =
       Evaluator.create config ~nominal:iv_target
         ~box_model:
           (Tolerance.calibrate config ~nominal:iv_target
              ~corners:corner_targets ~grid:2 ())
     in
     [ mk Experiments.Iv_configs.config1; mk Experiments.Iv_configs.config2 ])

let test_generate_strong_fault () =
  let evaluators = Lazy.force dc_evaluators in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:n1-vout";
      fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
    }
  in
  let r = Generate.generate ~evaluators entry in
  Alcotest.(check int) "two candidates" 2 (List.length r.Generate.candidates);
  Alcotest.(check bool) "trace recorded" true (r.Generate.trace <> []);
  match r.Generate.outcome with
  | Generate.Unique { critical_impact; dictionary_sensitivity; config_id; _ } ->
      Alcotest.(check bool) "winner among configs" true
        (List.mem config_id [ 1; 2 ]);
      Alcotest.(check bool) "detected at dictionary impact" true
        (dictionary_sensitivity < 0.);
      Alcotest.(check bool)
        (Printf.sprintf "critical impact %.0f weaker than dictionary"
           critical_impact)
        true
        (critical_impact > 10e3)
  | Generate.Undetectable _ -> Alcotest.fail "strong fault must be detectable"

let test_generate_invisible_fault () =
  (* bridging the two terminals of the ideal supply source is invisible at
     10 kOhm; the algorithm must intensify the impact *)
  let evaluators = Lazy.force dc_evaluators in
  let entry =
    {
      Faults.Dictionary.fault_id = "bridge:0-vdd";
      fault = Faults.Fault.bridge "0" "vdd" ~resistance:10e3;
    }
  in
  let r = Generate.generate ~evaluators entry in
  (match r.Generate.outcome with
  | Generate.Unique { critical_impact; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "critical impact %.0f stronger than dictionary"
           critical_impact)
        true
        (critical_impact < 10e3)
  | Generate.Undetectable _ -> ());
  (* either way the trace must show intensification below 10k *)
  Alcotest.(check bool) "impact was intensified" true
    (List.exists (fun s -> s.Generate.impact < 10e3) r.Generate.trace)

let test_generate_optimizes_better_than_seed () =
  (* the optimized candidate must be at least as sensitive as the seed *)
  let evaluators = Lazy.force dc_evaluators in
  let ev = List.hd evaluators in
  let fault =
    Faults.Fault.weaken
      (Faults.Fault.bridge "iin" "vout" ~resistance:10e3)
      ~factor:3.
  in
  let cand = Generate.optimize_candidate ev fault in
  let seed_s =
    Evaluator.sensitivity ev fault
      (Test_config.param_values_of_seed (Evaluator.config ev))
  in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %.3f <= seed %.3f"
       cand.Generate.low_impact_sensitivity seed_s)
    true
    (cand.Generate.low_impact_sensitivity <= seed_s +. 1e-9)

(* Impact-walk edge cases.  Generation is deterministic, so these pin the
   exact arms of the walk: budget exhaustion mid-walk, the
   survives-at-r_max short-circuit, and both exits of
   [bisect_for_unique]. *)

let bridge_entry id (a, b) =
  { Faults.Dictionary.fault_id = id; fault = Faults.Fault.bridge a b ~resistance:10e3 }

let unique_exn (r : Generate.result) =
  match r.Generate.outcome with
  | Generate.Unique { config_id; critical_impact; _ } ->
      (config_id, critical_impact)
  | Generate.Undetectable _ -> Alcotest.fail "expected a unique outcome"

let test_generate_budget_exhausted_mid_walk () =
  (* bridge 0-nmir detects on both configs far past 40 kOhm; a budget of 2
     runs out inside walk_up, forcing tie_break at the last probed level.
     With the budget gone, [death] cannot move, so the critical impact is
     exactly the tie-break resistance. *)
  let evaluators = Lazy.force dc_evaluators in
  let r =
    Generate.generate
      ~options:{ Generate.default_options with Generate.max_impact_steps = 2 }
      ~evaluators
      (bridge_entry "bridge:0-nmir" ("0", "nmir"))
  in
  let _, critical = unique_exn r in
  Alcotest.(check (float 0.)) "critical pinned at last probe" 20e3 critical;
  Alcotest.(check int) "exactly budget-many probes" 2
    (List.length r.Generate.trace);
  Alcotest.(check bool) "both configs still detecting when budget died" true
    (List.for_all
       (fun s -> s.Generate.detecting = [ 1; 2 ])
       r.Generate.trace)

let test_generate_survivor_at_r_max () =
  (* With one evaluator the dictionary probe is immediately unique, and a
     span of 2 puts r_max at 20 kOhm.  The survivor still detects there,
     so the "survives even at the weakest impact tried" arm fires and the
     critical impact is exactly r_max — no refinement. *)
  let target = iv_target in
  let ev =
    Evaluator.create Experiments.Iv_configs.config1 ~nominal:target
      ~box_model:
        (Tolerance.calibrate Experiments.Iv_configs.config1 ~nominal:target
           ~corners:corner_targets ~grid:2 ())
  in
  let r =
    Generate.generate
      ~options:{ Generate.default_options with Generate.impact_span = 2. }
      ~evaluators:[ ev ]
      (bridge_entry "bridge:0-nmir" ("0", "nmir"))
  in
  let config_id, critical = unique_exn r in
  Alcotest.(check int) "sole evaluator wins" 1 config_id;
  Alcotest.(check (float 0.)) "critical is exactly r_max" 20e3 critical

let test_generate_bisect_finds_singleton () =
  (* bridge n1-n2: both configs detect through 20k, neither at 40k, and
     the log-space bisection lands on a point where only config 1 still
     sees the fault — the Some exit of bisect_for_unique. *)
  let evaluators = Lazy.force dc_evaluators in
  let r =
    Generate.generate ~evaluators (bridge_entry "bridge:n1-n2" ("n1", "n2"))
  in
  let config_id, critical = unique_exn r in
  Alcotest.(check int) "bisect winner" 1 config_id;
  Alcotest.(check bool)
    (Printf.sprintf "critical %.1f refined past the singleton" critical)
    true
    (critical > 33e3 && critical < 40e3);
  Alcotest.(check bool) "trace holds a singleton bisection step" true
    (List.exists (fun s -> s.Generate.detecting = [ 1 ]) r.Generate.trace)

let test_generate_bisect_exhausted_tie_break () =
  (* bridge n2-vdd with budget 3: probes at 10k/20k/40k consume the whole
     budget, bisect_for_unique returns None immediately, and tie_break
     settles on the most sensitive config at the last all-detecting
     level — critical exactly 20 kOhm. *)
  let evaluators = Lazy.force dc_evaluators in
  let r =
    Generate.generate
      ~options:{ Generate.default_options with Generate.max_impact_steps = 3 }
      ~evaluators
      (bridge_entry "bridge:n2-vdd" ("n2", "vdd"))
  in
  let config_id, critical = unique_exn r in
  Alcotest.(check int) "tie-break winner" 1 config_id;
  Alcotest.(check (float 0.)) "critical pinned by exhausted bisect" 20e3
    critical;
  Alcotest.(check int) "three probes then stop" 3 (List.length r.Generate.trace)

let test_generate_empty_evaluators () =
  (try
     ignore
       (Generate.generate ~evaluators:[]
          {
            Faults.Dictionary.fault_id = "x";
            fault = Faults.Fault.bridge "a" "b" ~resistance:1.;
          });
     Alcotest.fail "empty evaluators accepted"
   with Invalid_argument _ -> ())

let () =
  Alcotest.run "testgen"
    [
      ( "test_param",
        [
          Alcotest.test_case "create/normalize" `Quick test_param_create;
          Alcotest.test_case "validation" `Quick test_param_validation;
          Alcotest.test_case "bounds_of" `Quick test_param_bounds_of;
        ] );
      ( "test_config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "describe" `Quick test_config_describe;
        ] );
      ( "execute",
        [
          Alcotest.test_case "with_stimulus" `Quick test_with_stimulus;
          Alcotest.test_case "dc observables" `Quick test_observables_dc;
          Alcotest.test_case "dc pair observables" `Quick test_observables_dc_pair;
          Alcotest.test_case "thd observable" `Quick test_observables_thd;
          Alcotest.test_case "step sample train" `Quick test_observables_step_train;
          Alcotest.test_case "arity check" `Quick test_observables_param_mismatch;
          Alcotest.test_case "deviation modes" `Quick test_deviations_modes;
          Alcotest.test_case "return values" `Quick test_return_values;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "algebra" `Quick test_sensitivity_algebra;
          Alcotest.test_case "compute" `Quick test_sensitivity_compute;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "floor only" `Quick test_floor_only_box;
          Alcotest.test_case "respects floor" `Quick test_calibrate_respects_floor;
          Alcotest.test_case "scales with level" `Quick test_calibrate_scales_with_level;
          Alcotest.test_case "interpolates" `Quick test_calibrate_interpolation_between_lattice;
          Alcotest.test_case "clamps outside" `Quick test_calibrate_clamps_outside;
          Alcotest.test_case "lattice" `Quick test_lattice_points;
          Alcotest.test_case "validation" `Quick test_calibrate_validation;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "memoization" `Quick test_evaluator_memoization;
          Alcotest.test_case "detects strong fault" `Quick test_evaluator_detects_strong_fault;
          Alcotest.test_case "ignores weak fault" `Quick test_evaluator_ignores_weak_fault;
          Alcotest.test_case "counts simulations" `Quick test_evaluator_counts;
          Alcotest.test_case "deviation report" `Quick test_evaluator_deviation_report;
        ] );
      ( "tps",
        [
          Alcotest.test_case "1-d sweep" `Quick test_tps_sweep_1d;
          Alcotest.test_case "value_at" `Quick test_tps_value_at;
          Alcotest.test_case "soft region" `Quick test_tps_classify_soft;
        ] );
      ( "generate",
        [
          Alcotest.test_case "strong fault" `Quick test_generate_strong_fault;
          Alcotest.test_case "invisible fault intensified" `Quick test_generate_invisible_fault;
          Alcotest.test_case "beats the seed" `Quick test_generate_optimizes_better_than_seed;
          Alcotest.test_case "budget exhausted mid-walk" `Quick test_generate_budget_exhausted_mid_walk;
          Alcotest.test_case "survivor at r_max" `Quick test_generate_survivor_at_r_max;
          Alcotest.test_case "bisect finds singleton" `Quick test_generate_bisect_finds_singleton;
          Alcotest.test_case "bisect exhausted tie-break" `Quick test_generate_bisect_exhausted_tie_break;
          Alcotest.test_case "needs evaluators" `Quick test_generate_empty_evaluators;
        ] );
    ]
