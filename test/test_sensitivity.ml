(* Unit tests for the sensitivity cost function: pinned values for a
   hand-solved resistive divider with a bridge fault, sign/monotonicity
   properties of the paper's S_f(T) = 1 - |delta r|/box, and the
   compute_gradient chain rule checked against finite differences of
   compute for every return mode. *)

open Testgen

let approx = Alcotest.float 1e-12

let config_of ?(levels = 1) returns names =
  Test_config.create ~id:77 ~name:"sensitivity unit" ~macro_type:"unit"
    ~control_node:"in"
    ~params:
      [
        Test_param.create ~name:"p" ~units:"V" ~lower:0. ~upper:1. ~seed:0.5;
      ]
    ~analysis:
      (Test_config.Dc_levels
         (fun v -> List.init levels (fun _ -> Circuit.Waveform.Dc v.(0))))
    ~returns ~return_names:names
    ~accuracy_floor:(List.map (fun _ -> 1e-3) names)
    ~summary:"sensitivity unit fixture"

let one_return = config_of Test_config.Per_component [ "V(out)" ]

(* -------------------------------------------------- basic algebra *)

let test_of_deviation () =
  Alcotest.check approx "zero deviation costs 1" 1.
    (Sensitivity.of_deviation ~deviation:0. ~box:0.1);
  Alcotest.check approx "deviation at the box edge costs 0" 0.
    (Sensitivity.of_deviation ~deviation:0.1 ~box:0.1);
  Alcotest.check approx "twice the box costs -1" (-1.)
    (Sensitivity.of_deviation ~deviation:0.2 ~box:0.1);
  Alcotest.check approx "sign of the deviation is irrelevant"
    (Sensitivity.of_deviation ~deviation:0.07 ~box:0.1)
    (Sensitivity.of_deviation ~deviation:(-0.07) ~box:0.1);
  Alcotest.check_raises "non-positive box rejected"
    (Invalid_argument "Sensitivity.of_deviation: box <= 0")
    (fun () -> ignore (Sensitivity.of_deviation ~deviation:0.1 ~box:0.))

let test_combine_and_detects () =
  Alcotest.check approx "combine takes the minimum" (-0.25)
    (Sensitivity.combine [| 0.9; -0.25; 0.1 |]);
  Alcotest.(check bool) "negative sensitivity detects" true
    (Sensitivity.detects (-1e-9));
  Alcotest.(check bool) "zero sensitivity does not detect" false
    (Sensitivity.detects 0.);
  Alcotest.(check bool) "positive sensitivity does not detect" false
    (Sensitivity.detects 0.4)

(* ------------------------------------------- hand-solved divider *)

(* Resistive divider vin -R1- vout -R2- gnd driven at V, with a bridge
   of rf ohms across R2: vout = V * (R2 || rf) / (R1 + (R2 || rf)).
   Everything solvable on paper — the pinned values below come from
   V = 5, R1 = R2 = 10k. *)
let divider_vout ~rf =
  let v = 5. and r1 = 10e3 and r2 = 10e3 in
  let r2' = if Float.is_finite rf then r2 *. rf /. (r2 +. rf) else r2 in
  v *. r2' /. (r1 +. r2')

let test_divider_pinned () =
  let nominal = divider_vout ~rf:infinity in
  Alcotest.check approx "nominal divider voltage" 2.5 nominal;
  (* rf = 10k makes R2' = 5k: vout = 5 * 5/15 = 5/3, deviation -5/6 *)
  let faulty = divider_vout ~rf:10e3 in
  Alcotest.check approx "faulty divider voltage" (5. /. 3.) faulty;
  let s =
    Sensitivity.compute one_return ~box:[| 0.1 |] ~nominal:[| nominal |]
      ~faulty:[| faulty |]
  in
  Alcotest.check approx "S = 1 - (5/6)/0.1"
    (1. -. (5. /. 6. /. 0.1))
    s;
  Alcotest.(check bool) "well outside the box: detected" true
    (Sensitivity.detects s);
  (* a 1 MOhm bridge barely moves the divider: inside a 0.1 V box *)
  let soft =
    Sensitivity.compute one_return ~box:[| 0.1 |] ~nominal:[| nominal |]
      ~faulty:[| divider_vout ~rf:1e6 |]
  in
  Alcotest.(check bool) "soft fault stays undetected" false
    (Sensitivity.detects soft)

(* Intensifying the bridge (smaller rf) monotonically lowers the
   divider sensitivity; weakening it drives S toward 1. *)
let test_divider_monotone () =
  let nominal = divider_vout ~rf:infinity in
  let s_at rf =
    Sensitivity.compute one_return ~box:[| 0.1 |] ~nominal:[| nominal |]
      ~faulty:[| divider_vout ~rf |]
  in
  let ladder = [ 1e6; 300e3; 100e3; 30e3; 10e3; 3e3; 1e3 ] in
  let values = List.map s_at ladder in
  List.iter2
    (fun (weaker, stronger) rf ->
      Alcotest.(check bool)
        (Printf.sprintf "S strictly decreases through rf = %g" rf)
        true (stronger < weaker))
    (List.combine
       (List.filteri (fun i _ -> i < List.length values - 1) values)
       (List.tl values))
    (List.tl ladder);
  Alcotest.(check bool) "S approaches 1 from below as rf grows" true
    (let s = s_at 1e9 in
     s < 1. && s > 1. -. 1e-3)

let test_multi_return_minimum () =
  let config =
    config_of ~levels:2 Test_config.Per_component [ "a"; "b" ]
  in
  let s =
    Sensitivity.compute config ~box:[| 0.1; 0.1 |] ~nominal:[| 1.; 2. |]
      ~faulty:[| 1.05; 2.3 |]
  in
  (* component sensitivities are 0.5 and -2: the worse one wins *)
  Alcotest.check approx "minimum over return values" (-2.) s

(* --------------------------------------- compute_gradient chain *)

let test_gradient_pinned () =
  (* S(p) = 1 - |f - n| / b with n = 2 + 3p, f = 1 + p, b = 0.5 + 0.1p
     at p = 0.2: dev = -(1 + 2p), S = 1 - (1 + 2p)/(0.5 + 0.1p) and
     dS/dp = -(2 b - (1 + 2p) 0.1)/b^2 = -0.9/0.2704. *)
  let p = 0.2 in
  let s, grad =
    Sensitivity.compute_gradient one_return
      ~box:[| 0.5 +. (0.1 *. p) |]
      ~dbox:[| [| 0.1 |] |]
      ~nominal:[| 2. +. (3. *. p) |]
      ~dnominal:[| [| 3. |] |]
      ~faulty:[| 1. +. p |]
      ~dfaulty:[| [| 1. |] |]
  in
  Alcotest.check approx "pinned value" (1. -. (1.4 /. 0.52)) s;
  Alcotest.check approx "pinned gradient" (-0.9 /. (0.52 *. 0.52)) grad.(0)

let test_gradient_value_matches_compute () =
  let config = config_of ~levels:3 Test_config.Per_component [ "a"; "b"; "c" ] in
  let rng = Numerics.Rng.create 21L in
  for _ = 1 to 50 do
    let arr n lo hi = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo ~hi) in
    let box = arr 3 0.05 0.5
    and nominal = arr 3 (-1.) 1.
    and faulty = arr 3 (-1.) 1. in
    let dzero = Array.init 3 (fun _ -> [| 0. |]) in
    let s, _ =
      Sensitivity.compute_gradient config ~box ~dbox:dzero ~nominal
        ~dnominal:dzero ~faulty ~dfaulty:dzero
    in
    Alcotest.(check int64) "value part bit-identical to compute"
      (Int64.bits_of_float
         (Sensitivity.compute config ~box ~nominal ~faulty))
      (Int64.bits_of_float s)
  done

(* Every return mode: the analytic gradient must match a central
   difference of [compute] along a random linear parameterization of
   the inputs (responses and box all moving with p). *)
let prop_gradient_matches_fd =
  let modes =
    [
      (config_of ~levels:3 Test_config.Per_component [ "a"; "b"; "c" ], 3, 3);
      (config_of ~levels:4 Test_config.Max_abs_delta [ "max" ], 4, 1);
      (config_of ~levels:4 Test_config.Sum_abs_delta [ "sum" ], 4, 1);
    ]
  in
  QCheck.Test.make ~name:"compute_gradient matches FD of compute" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, mode) ->
      let config, samples, returns = List.nth modes mode in
      let rng = Numerics.Rng.create (Int64.of_int ((seed * 3) + mode)) in
      let arr n lo hi =
        Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo ~hi)
      in
      let nominal0 = arr samples (-1.) 1.
      and dnominal = arr samples (-0.5) 0.5
      and faulty0 = arr samples (-1.) 1.
      and dfaulty = arr samples (-0.5) 0.5
      and box0 = arr returns 0.2 0.6
      and dbox = arr returns (-0.05) 0.05 in
      let at t =
        ( Array.mapi (fun i x -> x +. (t *. dnominal.(i))) nominal0,
          Array.mapi (fun i x -> x +. (t *. dfaulty.(i))) faulty0,
          Array.mapi (fun i x -> x +. (t *. dbox.(i))) box0 )
      in
      let value t =
        let nominal, faulty, box = at t in
        Sensitivity.compute config ~box ~nominal ~faulty
      in
      let s, grad =
        let nominal, faulty, box = at 0. in
        Sensitivity.compute_gradient config ~box
          ~dbox:(Array.map (fun d -> [| d |]) dbox)
          ~nominal
          ~dnominal:(Array.map (fun d -> [| d |]) dnominal)
          ~faulty
          ~dfaulty:(Array.map (fun d -> [| d |]) dfaulty)
      in
      if Int64.bits_of_float s <> Int64.bits_of_float (value 0.) then false
      else
        let h = 1e-6 in
        let fd = (value h -. value (-.h)) /. (2. *. h) in
        let fd2 = (value (h /. 2.) -. value (-.h /. 2.)) /. h in
        (* piecewise-linear surface: away from the kinks (min switch,
           |dev| zero crossing, argmax switch) both steps agree and the
           FD is exact; on a kink they differ — skip the draw. *)
        QCheck.assume (Float.abs (fd -. fd2) <= 1e-9 *. Float.max 1. (Float.abs fd));
        Float.abs (fd -. grad.(0)) <= 1e-6 *. Float.max 1. (Float.abs fd))

let () =
  Alcotest.run "sensitivity"
    [
      ( "algebra",
        [
          Alcotest.test_case "of_deviation" `Quick test_of_deviation;
          Alcotest.test_case "combine and detects" `Quick
            test_combine_and_detects;
        ] );
      ( "divider",
        [
          Alcotest.test_case "pinned hand-solved values" `Quick
            test_divider_pinned;
          Alcotest.test_case "impact monotonicity" `Quick
            test_divider_monotone;
          Alcotest.test_case "multi-return minimum" `Quick
            test_multi_return_minimum;
        ] );
      ( "gradient",
        [
          Alcotest.test_case "pinned chain rule" `Quick test_gradient_pinned;
          Alcotest.test_case "value part matches compute" `Quick
            test_gradient_value_matches_compute;
          QCheck_alcotest.to_alcotest prop_gradient_matches_fd;
        ] );
    ]
