(* Tests for the chaos harness: scenario generation and shrinking, the
   engine invariants, and campaign determinism. *)

module Scenario = Fuzz.Scenario
module Invariants = Fuzz.Invariants
module Campaign = Fuzz.Campaign

(* ---------------------------------------------------------------- specs *)

let spec_in_bounds (s : Scenario.spec) =
  (match s.Scenario.topology with
  | Scenario.Rc_ladder n -> n >= 1 && n <= Macros.Rc_ladder.max_sections
  | Scenario.Ota | Scenario.Sallen_key -> true
  | Scenario.Sk_chain n -> n >= 1 && n <= Macros.Filter_chain.max_stages
  | Scenario.Ota_cascade n ->
      n >= 1 && n <= Macros.Filter_chain.max_ota_stages)
  && s.Scenario.fault_count >= 1
  && s.Scenario.bridge_weight >= 0
  && s.Scenario.bridge_weight <= 100
  && s.Scenario.config_count >= 1
  && s.Scenario.levels >= 1
  && s.Scenario.floor_exp >= 1
  && s.Scenario.value_seed >= 0

let prop_gen_in_bounds =
  QCheck.Test.make ~name:"generated specs stay in bounds" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int seed) in
      spec_in_bounds (Scenario.gen rng))

let prop_shrink_strictly_smaller =
  QCheck.Test.make ~name:"every shrink candidate is strictly smaller"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int seed) in
      let s = Scenario.gen rng in
      List.for_all
        (fun c -> Scenario.size c < Scenario.size s && spec_in_bounds c)
        (Scenario.shrink s))

let test_minimal_is_fixed_point () =
  Alcotest.(check (list string))
    "minimal has no shrink candidates" []
    (List.map Scenario.to_string (Scenario.shrink Scenario.minimal));
  Alcotest.(check string) "minimal prints canonically" "rc1/f1/bw100/c1/l1/e2/v0"
    (Scenario.to_string Scenario.minimal)

let test_build_deterministic () =
  let rng = Numerics.Rng.create 99L in
  for _ = 1 to 5 do
    let spec = Scenario.gen rng in
    let a = Scenario.build spec and b = Scenario.build spec in
    Alcotest.(check (list string))
      (Scenario.to_string spec ^ " draws the same dictionary twice")
      (List.map
         (fun e -> e.Faults.Dictionary.fault_id)
         (Faults.Dictionary.entries a.Scenario.dictionary))
      (List.map
         (fun e -> e.Faults.Dictionary.fault_id)
         (Faults.Dictionary.entries b.Scenario.dictionary));
    Alcotest.(check int)
      (Scenario.to_string spec ^ " config count honoured")
      spec.Scenario.config_count
      (List.length a.Scenario.configs);
    Alcotest.(check bool)
      (Scenario.to_string spec ^ " dictionary within requested size")
      true
      (Faults.Dictionary.size a.Scenario.dictionary
      <= spec.Scenario.fault_count)
  done

(* ----------------------------------------------------------- invariants *)

let minimal_ctx =
  lazy
    (Invariants.make_ctx ~jobs:2 ~inject:Campaign.default_inject
       ~inject_seed:1L Scenario.minimal)

let test_all_invariants_hold_on_minimal () =
  let ctx = Lazy.force minimal_ctx in
  List.iter
    (fun (inv : Invariants.t) ->
      match inv.Invariants.check ctx with
      | Invariants.Pass | Invariants.Skip _ -> ()
      | Invariants.Fail detail ->
          Alcotest.fail (Printf.sprintf "%s: %s" inv.Invariants.name detail))
    Invariants.all

let test_self_test_invariant_plants_violation () =
  let fails spec =
    let ctx =
      Invariants.make_ctx ~jobs:1 ~inject:[] ~inject_seed:0L spec
    in
    match Invariants.self_test_invariant.Invariants.check ctx with
    | Invariants.Fail _ -> true
    | Invariants.Pass | Invariants.Skip _ -> false
  in
  Alcotest.(check bool) "clean at fault_count 1" false (fails Scenario.minimal);
  Alcotest.(check bool) "planted at fault_count 2" true
    (fails { Scenario.minimal with Scenario.fault_count = 2 })

(* ------------------------------------------------------------ campaigns *)

let quick_options =
  {
    Campaign.default_options with
    Campaign.campaigns = 2;
    seed = 5L;
    checks = Some [ "session-roundtrip"; "inject-contract" ];
  }

let run_exn options =
  match Campaign.run options with
  | Ok r -> r
  | Error m -> Alcotest.fail m

let test_campaign_deterministic_across_jobs () =
  let json jobs = Campaign.report_json (run_exn { quick_options with Campaign.jobs }) in
  let reference = json 1 in
  Alcotest.(check string) "jobs 1 repeats byte-identically" reference (json 1);
  Alcotest.(check string) "jobs 2 matches jobs 1" reference (json 2)

let test_campaign_rejects_unknown_check () =
  match
    Campaign.run
      { quick_options with Campaign.checks = Some [ "no-such-invariant" ] }
  with
  | Error m ->
      Alcotest.(check bool) "diagnostic names the invariant" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "unknown invariant accepted"

let test_self_test_campaign_finds_and_shrinks () =
  (* seeded so at least one drawn scenario has fault_count >= 2; the
     planted violation must be found and shrunk to the exact minimal
     counterexample *)
  let report =
    run_exn
      {
        quick_options with
        Campaign.campaigns = 8;
        seed = 3L;
        checks = Some [ "session-roundtrip" ];
        self_test = true;
      }
  in
  match
    List.filter
      (fun v -> String.equal v.Campaign.v_invariant "self-test")
      report.Campaign.r_violations
  with
  | [] -> Alcotest.fail "planted violation not found in 8 campaigns"
  | vs ->
      List.iter
        (fun v ->
          Alcotest.(check string) "shrunk to the minimal counterexample"
            "rc1/f2/bw100/c1/l1/e2/v0"
            (Scenario.to_string v.Campaign.v_shrunk);
          Alcotest.(check bool) "shrinking made progress" true
            (v.Campaign.v_shrink_steps >= 1))
        vs

let () =
  Alcotest.run "fuzz"
    [
      ( "scenario",
        [
          QCheck_alcotest.to_alcotest prop_gen_in_bounds;
          QCheck_alcotest.to_alcotest prop_shrink_strictly_smaller;
          Alcotest.test_case "minimal fixed point" `Quick
            test_minimal_is_fixed_point;
          Alcotest.test_case "build deterministic" `Quick
            test_build_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "all hold on minimal" `Quick
            test_all_invariants_hold_on_minimal;
          Alcotest.test_case "self-test plants violation" `Quick
            test_self_test_invariant_plants_violation;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_campaign_deterministic_across_jobs;
          Alcotest.test_case "rejects unknown check" `Quick
            test_campaign_rejects_unknown_check;
          Alcotest.test_case "self-test finds and shrinks" `Quick
            test_self_test_campaign_finds_and_shrinks;
        ] );
    ]
