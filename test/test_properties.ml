(* Cross-cutting property tests: physical consistency between analyses,
   structural invariants of the MNA system, clustering/collapse algebra. *)

open Circuit

(* -------------------------------------------------- tran vs ac consistency *)

(* For a linear RC low-pass the transient steady-state sine amplitude must
   match the AC transfer magnitude — two completely independent code paths
   (nonlinear time stepping vs complex phasor solve). *)
let prop_tran_matches_ac =
  QCheck.Test.make ~name:"transient steady state matches AC transfer"
    ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 101)) in
      let r = Numerics.Rng.uniform rng ~lo:100. ~hi:10e3 in
      let c = Numerics.Rng.uniform rng ~lo:1e-9 ~hi:1e-6 in
      let fc = 1. /. (2. *. Float.pi *. r *. c) in
      (* pick a frequency around the cutoff where |H| varies the most *)
      let freq = fc *. Numerics.Rng.uniform rng ~lo:0.3 ~hi:3. in
      let nl =
        Netlist.add_all (Netlist.empty ~title:"rc")
          [
            Device.Vsource
              { name = "v"; plus = "in"; minus = "0";
                wave = Waveform.Sine { offset = 0.; ampl = 1.; freq; phase = 0. } };
            Device.Resistor { name = "r"; a = "in"; b = "out"; ohms = r };
            Device.Capacitor { name = "c"; a = "out"; b = "0"; farads = c };
          ]
      in
      let sys = Mna.build nl in
      let op = Dc.operating_point sys ~time:`Dc in
      let h =
        match Ac.sweep sys ~op ~source:"v" ~freqs:[| freq |] ~observe:"out" with
        | [ p ] -> Complex.norm p.Ac.value
        | _ -> nan
      in
      let period = 1. /. freq in
      let result =
        Tran.simulate ~method_:Tran.Trapezoidal sys ~tstop:(10. *. period)
          ~dt:(period /. 200.) ~observe:[ "out" ]
      in
      let v = Tran.probe_values result "out" in
      let n = Array.length v in
      let lo, hi = Numerics.Stats.min_max (Array.sub v (n - 200) 200) in
      let amp = (hi -. lo) /. 2. in
      Float.abs (amp -. h) <= 0.02 *. h)

(* ---------------------------------------------------- resistive reduction *)

(* A random resistor ladder driven by a DC source: MNA voltage at the load
   equals the closed-form series/parallel reduction. *)
let prop_ladder_reduction =
  QCheck.Test.make ~name:"MNA matches series/parallel ladder reduction"
    ~count:60
    QCheck.(pair (int_range 1 6) (int_range 0 100_000))
    (fun (stages, seed) ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 41)) in
      let resistor () = Numerics.Rng.uniform rng ~lo:100. ~hi:100e3 in
      (* ladder: v -- Rs1 -- n1 -- Rs2 -- n2 ... each ni also has Rpi to 0.
         Reduce from the far end: Req_k = Rp_k || (Rs_{k+1} + Req_{k+1}) *)
      let series = Array.init stages (fun _ -> resistor ()) in
      let shunt = Array.init stages (fun _ -> resistor ()) in
      let nl = ref (Netlist.empty ~title:"ladder") in
      let add d = nl := Netlist.add !nl d in
      add (Device.Vsource { name = "v"; plus = "n0"; minus = "0"; wave = Waveform.Dc 10. });
      for k = 0 to stages - 1 do
        add
          (Device.Resistor
             { name = Printf.sprintf "rs%d" k; a = Printf.sprintf "n%d" k;
               b = Printf.sprintf "n%d" (k + 1); ohms = series.(k) });
        add
          (Device.Resistor
             { name = Printf.sprintf "rp%d" k; a = Printf.sprintf "n%d" (k + 1);
               b = "0"; ohms = shunt.(k) })
      done;
      let sys = Mna.build !nl in
      let x = Dc.operating_point sys ~time:`Dc in
      (* closed form by backward reduction *)
      let rec req k =
        if k = stages - 1 then shunt.(k)
        else
          let downstream = series.(k + 1) +. req (k + 1) in
          1. /. ((1. /. shunt.(k)) +. (1. /. downstream))
      in
      let rec volt k v_in =
        (* voltage at node k+1 given voltage at node k *)
        let z = req k in
        let v = v_in *. z /. (series.(k) +. z) in
        if k = stages - 1 then v else volt (k + 1) v
      in
      let expected = volt 0 10. in
      let got = Mna.voltage sys x (Printf.sprintf "n%d" stages) in
      Float.abs (got -. expected) <= 1e-6 *. (1. +. Float.abs expected))

(* ------------------------------------------------------------ MNA algebra *)

(* Circuits of resistors and current sources only produce a symmetric
   conductance matrix. *)
let prop_mna_symmetry =
  QCheck.Test.make ~name:"resistive MNA matrix is symmetric" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 7)) in
      let n_nodes = 2 + Numerics.Rng.int rng ~bound:5 in
      let node i = if i = 0 then "0" else Printf.sprintf "n%d" i in
      let nl = ref (Netlist.empty ~title:"mesh") in
      (* spanning chain guarantees connectivity, then random extra edges *)
      for i = 0 to n_nodes - 2 do
        nl :=
          Netlist.add !nl
            (Device.Resistor
               { name = Printf.sprintf "rc%d" i; a = node i; b = node (i + 1);
                 ohms = Numerics.Rng.uniform rng ~lo:10. ~hi:1e4 })
      done;
      for e = 0 to n_nodes - 1 do
        let i = Numerics.Rng.int rng ~bound:n_nodes in
        let j = Numerics.Rng.int rng ~bound:n_nodes in
        if i <> j then
          nl :=
            Netlist.add !nl
              (Device.Resistor
                 { name = Printf.sprintf "re%d" e; a = node i; b = node j;
                   ohms = Numerics.Rng.uniform rng ~lo:10. ~hi:1e4 })
      done;
      nl :=
        Netlist.add !nl
          (Device.Isource
             { name = "i"; from_node = "0"; to_node = node (n_nodes - 1);
               wave = Waveform.Dc 1e-3 });
      let sys = Mna.build !nl in
      let x = Numerics.Vec.create (Mna.size sys) 0. in
      let a, _ = Mna.assemble sys ~x ~time:`Dc ~gmin:1e-12 () in
      let ok = ref true in
      for i = 0 to Numerics.Mat.rows a - 1 do
        for j = 0 to Numerics.Mat.cols a - 1 do
          if
            Float.abs (Numerics.Mat.get a i j -. Numerics.Mat.get a j i)
            > 1e-12
          then ok := false
        done
      done;
      !ok)

(* superposition: doubling every independent source doubles every node
   voltage of a linear circuit *)
let prop_linearity =
  QCheck.Test.make ~name:"linear circuits scale with source_scale" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 23)) in
      let nl =
        Netlist.add_all (Netlist.empty ~title:"lin")
          [
            Device.Vsource
              { name = "v"; plus = "a"; minus = "0";
                wave = Waveform.Dc (Numerics.Rng.uniform rng ~lo:1. ~hi:10.) };
            Device.Resistor
              { name = "r1"; a = "a"; b = "b";
                ohms = Numerics.Rng.uniform rng ~lo:100. ~hi:1e4 };
            Device.Resistor
              { name = "r2"; a = "b"; b = "0";
                ohms = Numerics.Rng.uniform rng ~lo:100. ~hi:1e4 };
            Device.Isource
              { name = "i"; from_node = "0"; to_node = "b";
                wave = Waveform.Dc (Numerics.Rng.uniform rng ~lo:1e-4 ~hi:1e-2) };
          ]
      in
      let sys = Mna.build nl in
      let solve scale =
        (Dc.solve ~source_scale:scale sys ~time:`Dc).Dc.solution
      in
      let x1 = solve 1. and x2 = solve 2. in
      let vb1 = Mna.voltage sys x1 "b" and vb2 = Mna.voltage sys x2 "b" in
      Float.abs (vb2 -. (2. *. vb1)) <= 1e-9 *. (1. +. Float.abs vb2))

(* -------------------------------------------------------------- clustering *)

let cluster_params =
  [
    Testgen.Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:1. ~seed:0.5;
    Testgen.Test_param.create ~name:"y" ~units:"" ~lower:0. ~upper:1. ~seed:0.5;
  ]

let prop_cluster_complete_linkage =
  QCheck.Test.make
    ~name:"every pair inside a cluster is within the threshold" ~count:60
    QCheck.(pair (int_range 2 25) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 3)) in
      let items =
        List.init n (fun i ->
            {
              Testgen.Cluster.item_id = Printf.sprintf "p%d" i;
              location =
                [|
                  Numerics.Rng.uniform rng ~lo:0. ~hi:1.;
                  Numerics.Rng.uniform rng ~lo:0. ~hi:1.;
                |];
            })
      in
      let threshold = 0.2 in
      let groups =
        Testgen.Cluster.group ~params:cluster_params ~threshold items
      in
      (* partition check *)
      let count = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
      count = n
      && List.for_all
           (fun g ->
             List.for_all
               (fun (a : Testgen.Cluster.item) ->
                 List.for_all
                   (fun (b : Testgen.Cluster.item) ->
                     (* locations are back in physical units = normalized
                        here since bounds are [0,1] *)
                     Testgen.Cluster.distance a.Testgen.Cluster.location
                       b.Testgen.Cluster.location
                     <= threshold +. 1e-9)
                   g)
               g)
           groups)

let prop_centroid_inside_hull =
  QCheck.Test.make ~name:"centroid stays within the member bounding box"
    ~count:60
    QCheck.(pair (int_range 1 10) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 5)) in
      let members =
        List.init n (fun i ->
            {
              Testgen.Cluster.item_id = Printf.sprintf "m%d" i;
              location =
                [|
                  Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.;
                  Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.;
                |];
            })
      in
      let c = Testgen.Cluster.centroid members in
      let coords d =
        List.map (fun (m : Testgen.Cluster.item) -> m.Testgen.Cluster.location.(d)) members
      in
      List.for_all
        (fun d ->
          let cs = coords d in
          let lo = List.fold_left Float.min infinity cs in
          let hi = List.fold_left Float.max neg_infinity cs in
          c.(d) >= lo -. 1e-12 && c.(d) <= hi +. 1e-12)
        [ 0; 1 ])

(* ----------------------------------------------------------- collapse math *)

let prop_acceptance_monotone_in_delta =
  QCheck.Test.make
    ~name:"collapse acceptance bound is monotone in delta" ~count:200
    QCheck.(pair (float_range (-10.) 1.) (pair (float_range 0. 0.5) (float_range 0.5 1.)))
    (fun (s_opt, (d1, d2)) ->
      (* bound(delta) = s_opt + delta (1 - s_opt); 1 - s_opt >= 0 *)
      let bound d = s_opt +. (d *. (1. -. s_opt)) in
      bound d1 <= bound d2 +. 1e-12)

(* ------------------------------------------------------------- sensitivity *)

let prop_sensitivity_min =
  QCheck.Test.make ~name:"combined sensitivity is the component minimum"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-100.) 1.))
    (fun components ->
      let arr = Array.of_list components in
      let s = Testgen.Sensitivity.combine arr in
      Array.for_all (fun c -> s <= c +. 1e-12) arr
      && Array.exists (fun c -> Float.abs (c -. s) < 1e-12) arr)

let prop_sensitivity_scaling =
  QCheck.Test.make ~name:"sensitivity is linear in the deviation" ~count:100
    QCheck.(pair (float_range 0.01 10.) (float_range 0.1 10.))
    (fun (dev, box) ->
      let s1 = Testgen.Sensitivity.of_deviation ~deviation:dev ~box in
      let s2 = Testgen.Sensitivity.of_deviation ~deviation:(2. *. dev) ~box in
      (* 1 - 2d/b = 2(1 - d/b) - 1 *)
      Float.abs (s2 -. ((2. *. s1) -. 1.)) <= 1e-9)

(* ------------------------------------------------------- in-place LU *)

(* Random strictly diagonally dominant system: always factorable, and
   awkward enough (random signs and magnitudes) to exercise pivoting. *)
let random_system rng n =
  let a = Numerics.Mat.create n n in
  for i = 0 to n - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      if j <> i then begin
        let x = Numerics.Rng.uniform rng ~lo:(-1.) ~hi:1. in
        row_sum := !row_sum +. Float.abs x;
        Numerics.Mat.set a i j x
      end
    done;
    let sign = if Numerics.Rng.uniform rng ~lo:0. ~hi:1. < 0.5 then -1. else 1. in
    Numerics.Mat.set a i i (sign *. (!row_sum +. 1.))
  done;
  let b =
    Numerics.Vec.init n (fun _ -> Numerics.Rng.uniform rng ~lo:(-10.) ~hi:10.)
  in
  (a, b)

(* The workspace path must reproduce the allocating path bit for bit:
   same solution bytes, same pivot permutation.  The workspace is reused
   across iterations of the inner loop on systems of the same size, so
   stale state from a previous factorization must never leak. *)
let prop_lu_in_place_parity =
  QCheck.Test.make ~name:"factor_in_place/solve_into match lu_factor/lu_solve"
    ~count:100
    QCheck.(pair (int_range 1 9) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 7)) in
      let ws = Numerics.Mat.lu_workspace n in
      let ok = ref true in
      (* several systems through one workspace: catches stale pivots *)
      for _ = 1 to 3 do
        let a, b = random_system rng n in
        let lu = Numerics.Mat.lu_factor a in
        let x_ref = Numerics.Mat.lu_solve lu b in
        Numerics.Mat.factor_in_place a ws;
        let x = Numerics.Vec.create n nan in
        Numerics.Mat.solve_into ws b x;
        if not (Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) x_ref x)
        then ok := false;
        if Numerics.Mat.lu_pivots lu <> Numerics.Mat.lu_pivots ws then
          ok := false
      done;
      !ok)

(* Rank-deficient inputs must fail identically: same [Singular] step
   from both implementations (the elimination arithmetic is shared, so a
   duplicated row hits the same zero pivot in both). *)
let prop_lu_singular_parity =
  QCheck.Test.make ~name:"factor_in_place Singular payload matches lu_factor"
    ~count:100
    QCheck.(pair (int_range 2 9) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 13)) in
      let a, _ = random_system rng n in
      (* duplicate one row onto another: exact linear dependence *)
      let src = Numerics.Rng.int rng ~bound:n in
      let dst = (src + 1 + Numerics.Rng.int rng ~bound:(n - 1)) mod n in
      for j = 0 to n - 1 do
        Numerics.Mat.set a dst j (Numerics.Mat.get a src j)
      done;
      let step_of f =
        match f () with
        | () -> None
        | exception Numerics.Mat.Singular k -> Some k
      in
      let ref_step = step_of (fun () -> ignore (Numerics.Mat.lu_factor a)) in
      let ws = Numerics.Mat.lu_workspace n in
      let ws_step = step_of (fun () -> Numerics.Mat.factor_in_place a ws) in
      ref_step = ws_step
      (* after a Singular raise the workspace must refuse to solve *)
      && (match ws_step with
         | None -> true
         | Some _ -> (
             let b = Numerics.Vec.create n 0. in
             let x = Numerics.Vec.create n 0. in
             match Numerics.Mat.solve_into ws b x with
             | () -> false
             | exception Invalid_argument _ -> true)))

let () =
  Alcotest.run "properties"
    [
      ( "physics",
        [
          QCheck_alcotest.to_alcotest prop_tran_matches_ac;
          QCheck_alcotest.to_alcotest prop_ladder_reduction;
          QCheck_alcotest.to_alcotest prop_mna_symmetry;
          QCheck_alcotest.to_alcotest prop_linearity;
        ] );
      ( "lu",
        [
          QCheck_alcotest.to_alcotest prop_lu_in_place_parity;
          QCheck_alcotest.to_alcotest prop_lu_singular_parity;
        ] );
      ( "clustering",
        [
          QCheck_alcotest.to_alcotest prop_cluster_complete_linkage;
          QCheck_alcotest.to_alcotest prop_centroid_inside_hull;
        ] );
      ( "algebra",
        [
          QCheck_alcotest.to_alcotest prop_acceptance_monotone_in_delta;
          QCheck_alcotest.to_alcotest prop_sensitivity_min;
          QCheck_alcotest.to_alcotest prop_sensitivity_scaling;
        ] );
    ]
