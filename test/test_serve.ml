(* Contract of the serve daemon: wire framing, admission control,
   graceful drain with byte-identical session resume, serve-vs-one-shot
   verdict parity, and the two concurrency-safety regressions that
   motivated de-globalizing failpoint injection and request-tagging the
   trace sink — concurrent injected sessions must not perturb each
   other, and concurrent requests must not corrupt each other's trace
   attribution. *)

open Testgen
module J = Serve.Jsonl
module P = Serve.Protocol
module Sv = Serve.Server
module Cl = Serve.Client

let next_id = ref 0

(* short /tmp names: sun_path caps the socket path around 100 bytes *)
let fresh_paths () =
  incr next_id;
  let tag = Printf.sprintf "/tmp/atpg-ts%d-%d" (Unix.getpid ()) !next_id in
  (tag ^ ".sock", tag ^ ".spool")

let with_server ?(budget = 2) f =
  let socket, spool = fresh_paths () in
  match Sv.start { Sv.socket; budget; spool } with
  | Error m -> Alcotest.fail m
  | Ok server ->
      Fun.protect
        ~finally:(fun () -> Sv.stop server)
        (fun () -> f server socket spool)

let gen_req ?(macro = "rc10") ?(backend = "dense") ?take ?session
    ?(inject = []) ?(seed = 0L) () =
  J.Obj
    ([
       ("op", J.Str "generate");
       ("macro", J.Str macro);
       ("backend", J.Str backend);
       ("fast", J.Bool true);
       ("jobs", J.Num 1.);
     ]
    @ (match take with
      | Some n -> [ ("take", J.Num (float_of_int n)) ]
      | None -> [])
    @ (match session with
      | Some s -> [ ("session", J.Str s) ]
      | None -> [])
    @
    match inject with
    | [] -> []
    | sp ->
        [
          ("inject", J.List (List.map (fun s -> J.Str s) sp));
          ("inject_seed", J.Num (Int64.to_float seed));
        ])

let ping_req linger_ms =
  J.Obj
    [ ("op", J.Str "ping"); ("linger_ms", J.Num (float_of_int linger_ms)) ]

let roundtrip_ok ~socket ~req json =
  match Cl.roundtrip ~socket ~req json with
  | Ok reply -> reply
  | Error m -> Alcotest.failf "%s: %s" req m

let verdicts_of_reply reply =
  match Cl.result_event reply with
  | None -> Alcotest.fail "no result event"
  | Some r -> (
      match J.member "verdicts" r with
      | Some v -> J.to_string v
      | None -> Alcotest.fail "result event lacks verdicts")

(* the one-shot CLI construction, in-process: identical problems by
   construction (Setup.probe docs) *)
let reference = Hashtbl.create 8

let reference_verdicts (macro_name, backend, take) =
  let key = (macro_name, backend, take) in
  match Hashtbl.find_opt reference key with
  | Some v -> v
  | None ->
      let macro =
        match Macros.Registry.find macro_name with
        | Ok m -> m
        | Error e -> Alcotest.fail e
      in
      let ctx =
        Experiments.Setup.probe ~profile:Execute.fast_profile ~backend ~macro
          ()
      in
      let ctx = Experiments.Setup.reduced ctx ~n_faults:take in
      let run =
        Experiments.Runs.engine_run ~options:Experiments.Setup.probe_options
          ~executor:Engine.sequential ctx
      in
      let v = J.to_string (P.verdicts_of_run run) in
      Hashtbl.replace reference key v;
      v

(* -- wire format -------------------------------------------------------- *)

let test_jsonl_roundtrip () =
  let values =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Num 0.;
      J.Num 1.5;
      J.Num (-42.);
      J.Num 1e-9;
      J.Str "";
      J.Str "a\"b\\c\nd\te";
      J.Str "unicode \xc3\xa9";
      J.List [ J.Num 1.; J.Str "x"; J.Null ];
      J.Obj
        [
          ("k", J.Str "v");
          ("nested", J.Obj [ ("l", J.List [ J.Bool true ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      match J.of_string s with
      | Ok v' -> Alcotest.(check string) ("roundtrip " ^ s) s (J.to_string v')
      | Error m -> Alcotest.failf "parse %s: %s" s m)
    values;
  (match J.of_string "{\"a\":1} junk" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ());
  match J.of_string "{\"a\":1,}" with
  | Ok _ -> Alcotest.fail "accepted trailing comma"
  | Error _ -> ()

let test_request_decode () =
  let decode line =
    match J.of_string line with
    | Error m -> Alcotest.fail m
    | Ok j -> P.request_of_json ~fallback_id:"fb" j
  in
  (match
     decode
       "{\"req\":\"x\",\"op\":\"generate\",\"macro\":\"skc8\",\
        \"backend\":\"sparse\",\"take\":3,\
        \"inject\":[\"dc.no_convergence=0.5@2\"],\"session\":\"s-1\"}"
   with
  | Error m -> Alcotest.fail m
  | Ok rq -> (
      Alcotest.(check string) "req id" "x" rq.P.rq_id;
      match rq.P.rq_op with
      | P.Generate w ->
          Alcotest.(check string) "macro" "skc8" w.P.w_macro;
          Alcotest.(check bool)
            "sparse" true
            (w.P.w_backend = Circuit.Mna.Sparse);
          Alcotest.(check (option int)) "take" (Some 3) w.P.w_take;
          Alcotest.(check int) "inject" 1 (List.length w.P.w_inject);
          Alcotest.(check (option string)) "session" (Some "s-1") w.P.w_session
      | _ -> Alcotest.fail "decoded wrong op"));
  (match decode "{\"op\":\"bogus\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown op"
  | Error _ -> ());
  (match decode "{\"op\":\"generate\",\"session\":\"../evil\"}" with
  | Ok _ -> Alcotest.fail "accepted path-escaping session name"
  | Error _ -> ());
  match decode "{\"op\":\"ping\"}" with
  | Ok { P.rq_id = "fb"; rq_op = P.Ping { linger_ms = 0 } } -> ()
  | _ -> Alcotest.fail "fallback id / plain ping decode"

let test_framing () =
  with_server (fun _server socket _spool ->
      let reply = roundtrip_ok ~socket ~req:"p1" (ping_req 0) in
      Alcotest.(check int) "ping status" 0 reply.Cl.status;
      (match Cl.result_event reply with
      | Some r -> Alcotest.(check (option bool)) "pong" (Some true)
                    (J.bool_member "pong" r)
      | None -> Alcotest.fail "ping: no result");
      let stats =
        roundtrip_ok ~socket ~req:"s1" (J.Obj [ ("op", J.Str "stats") ])
      in
      (match Cl.result_event stats with
      | Some r ->
          Alcotest.(check (option int)) "budget" (Some 2)
            (J.int_member "budget" r)
      | None -> Alcotest.fail "stats: no result");
      (* unknown op answers error + done(1) and keeps the connection
         usable for the next request *)
      match Cl.connect ~socket with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Cl.close conn)
            (fun () ->
              let bad =
                Cl.request conn ~req:"b1" (J.Obj [ ("op", J.Str "bogus") ])
              in
              Alcotest.(check int) "bad op status" 1 bad.Cl.status;
              let again = Cl.request conn ~req:"p2" (ping_req 0) in
              Alcotest.(check int) "conn survives" 0 again.Cl.status))

(* -- admission ---------------------------------------------------------- *)

let test_admission () =
  with_server ~budget:1 (fun server socket _spool ->
      (* a lingering ping occupies the only slot... *)
      let holder =
        Thread.create
          (fun () -> ignore (Cl.roundtrip ~socket ~req:"hold" (ping_req 1000)))
          ()
      in
      let rec await_busy n =
        if n > 200 then Alcotest.fail "holder never occupied the slot";
        if (Sv.stats server).Sv.st_in_flight < 1 then begin
          Thread.delay 0.01;
          await_busy (n + 1)
        end
      in
      await_busy 0;
      (* ...so the next work request bounces with 429 *)
      let over = roundtrip_ok ~socket ~req:"over" (ping_req 100) in
      Alcotest.(check int) "429 status" P.exit_rejected over.Cl.status;
      (match over.Cl.events with
      | [ e ] ->
          Alcotest.(check (option int)) "429 code" (Some 429)
            (J.int_member "code" e)
      | _ -> Alcotest.fail "429: expected exactly the rejected event");
      (* introspection is never rejected *)
      let stats =
        roundtrip_ok ~socket ~req:"s" (J.Obj [ ("op", J.Str "stats") ])
      in
      Alcotest.(check int) "stats while full" 0 stats.Cl.status;
      Thread.join holder;
      (* during drain an established connection gets 503 *)
      match Cl.connect ~socket with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Cl.close conn)
            (fun () ->
              Sv.drain server;
              let late = Cl.request conn ~req:"late" (ping_req 10) in
              Alcotest.(check int) "503 status" P.exit_rejected late.Cl.status;
              match late.Cl.events with
              | [ e ] ->
                  Alcotest.(check (option int)) "503 code" (Some 503)
                    (J.int_member "code" e)
              | _ -> Alcotest.fail "503: expected exactly the rejected event"))

(* -- graceful drain + resume -------------------------------------------- *)

(* A session big enough that the drain flag lands mid-run once the first
   checkpoint block is on disk. *)
let drain_macro = "rc16"
let drain_take = 40

let test_drain_resume () =
  let socket1, spool = fresh_paths () in
  let session = "drainy" in
  let server1 =
    match Sv.start { Sv.socket = socket1; budget = 1; spool } with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let reply1 = ref None in
  let th =
    Thread.create
      (fun () ->
        reply1 :=
          Result.to_option
            (Cl.roundtrip ~socket:socket1 ~req:"d1"
               (gen_req ~macro:drain_macro ~take:drain_take ~session ())))
      ()
  in
  (* wait for the first checkpointed block, then drain: the engine's
     checkpoint hook observes the flag on the next append *)
  let path = Sv.session_path server1 session in
  let rec await_block n =
    if n > 4000 then Alcotest.fail "no checkpoint block appeared";
    let sz = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    if sz < 200 then begin
      Thread.delay 0.002;
      await_block (n + 1)
    end
  in
  await_block 0;
  Sv.drain server1;
  Thread.join th;
  Sv.stop server1;
  let reply1 = match !reply1 with Some r -> r | None -> Alcotest.fail "no reply" in
  let completed =
    match Cl.drained_event reply1 with
    | Some e -> Option.value ~default:(-1) (J.int_member "completed" e)
    | None ->
        Alcotest.failf
          "run was not drained (status %d) — drain landed too late"
          reply1.Cl.status
  in
  Alcotest.(check int) "drained status" P.exit_drained reply1.Cl.status;
  if completed < 1 || completed >= drain_take then
    Alcotest.failf "drained after %d of %d faults" completed drain_take;
  (* resume on a fresh server over the same spool: the rerun completes
     and the finished session file is byte-identical to an
     uninterrupted run's *)
  let socket2, _ = fresh_paths () in
  let server2 =
    match Sv.start { Sv.socket = socket2; budget = 1; spool } with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Fun.protect
    ~finally:(fun () -> Sv.stop server2)
    (fun () ->
      let resumed =
        roundtrip_ok ~socket:socket2 ~req:"d2"
          (gen_req ~macro:drain_macro ~take:drain_take ~session ())
      in
      Alcotest.(check int) "resumed status" 0 resumed.Cl.status;
      let uninterrupted =
        roundtrip_ok ~socket:socket2 ~req:"d3"
          (gen_req ~macro:drain_macro ~take:drain_take ~session:"fresh" ())
      in
      Alcotest.(check int) "uninterrupted status" 0 uninterrupted.Cl.status;
      Alcotest.(check string)
        "same verdicts" (verdicts_of_reply uninterrupted)
        (verdicts_of_reply resumed);
      let read_file p =
        let ic = open_in_bin p in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      Alcotest.(check bool)
        "session bytes identical to uninterrupted run" true
        (String.equal (read_file path)
           (read_file (Sv.session_path server2 "fresh"))))

(* -- serve vs one-shot parity ------------------------------------------- *)

let parity_cases =
  [
    ("rc10", "dense");
    ("rc10", "sparse");
    ("skc8", "dense");
    ("skc8", "sparse");
  ]

let test_parity () =
  with_server (fun _server socket _spool ->
      List.iter
        (fun (macro, backend_str) ->
          let backend =
            if String.equal backend_str "sparse" then Circuit.Mna.Sparse
            else Circuit.Mna.Dense
          in
          let reply =
            roundtrip_ok ~socket
              ~req:(macro ^ "-" ^ backend_str)
              (gen_req ~macro ~backend:backend_str ~take:3 ())
          in
          Alcotest.(check int) (macro ^ " status") 0 reply.Cl.status;
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdicts" macro backend_str)
            (reference_verdicts (macro, backend, 3))
            (verdicts_of_reply reply))
        parity_cases)

(* -- concurrency-safety regressions ------------------------------------- *)

(* Two sessions in flight, one injecting failures: the injected config
   must stay scoped to its own request (domain-local override + fan_out
   snapshot), leaving the clean session's verdicts untouched. *)
let test_injected_isolation () =
  with_server (fun _server socket _spool ->
      let clean = ref None and injected = ref None in
      let threads =
        [
          Thread.create
            (fun () ->
              injected :=
                Result.to_option
                  (Cl.roundtrip ~socket ~req:"inj"
                     (gen_req ~take:4
                        ~inject:[ "dc.no_convergence=0.5@3" ]
                        ~seed:7L ())))
            ();
          Thread.create
            (fun () ->
              clean :=
                Result.to_option
                  (Cl.roundtrip ~socket ~req:"cln" (gen_req ~take:4 ())))
            ();
        ]
      in
      List.iter Thread.join threads;
      let clean =
        match !clean with Some r -> r | None -> Alcotest.fail "clean died"
      in
      let injected =
        match !injected with
        | Some r -> r
        | None -> Alcotest.fail "injected died"
      in
      Alcotest.(check string)
        "clean verdicts unperturbed"
        (reference_verdicts ("rc10", Circuit.Mna.Dense, 4))
        (verdicts_of_reply clean);
      if injected.Cl.status <> 0 && injected.Cl.status <> Engine.exit_quarantined
      then
        Alcotest.failf "injected session exited %d (want 0 or %d)"
          injected.Cl.status Engine.exit_quarantined)

(* Two concurrent requests under an enabled trace sink: every
   request-tagged span line must carry the id of the request whose
   domain recorded it, and both requests must appear. *)
let test_trace_integrity () =
  let trace = Filename.temp_file "atpg-serve" ".trace" in
  Obs.enable ~trace ();
  let run () =
    with_server (fun _server socket _spool ->
        let a = ref None and b = ref None in
        let threads =
          [
            Thread.create
              (fun () ->
                a :=
                  Result.to_option
                    (Cl.roundtrip ~socket ~req:"tA" (gen_req ~take:3 ())))
              ();
            Thread.create
              (fun () ->
                b :=
                  Result.to_option
                    (Cl.roundtrip ~socket ~req:"tB"
                       (gen_req ~macro:"skc4" ~take:3 ())))
              ();
          ]
        in
        List.iter Thread.join threads;
        (match (!a, !b) with
        | Some a, Some b ->
            Alcotest.(check int) "tA status" 0 a.Cl.status;
            Alcotest.(check int) "tB status" 0 b.Cl.status
        | _ -> Alcotest.fail "a request died"))
  in
  Fun.protect ~finally:Obs.shutdown run;
  let seen = Hashtbl.create 4 in
  let ic = open_in trace in
  (try
     while true do
       let line = input_line ic in
       match J.of_string line with
       | Ok json -> (
           match J.str_member "req" json with
           | Some ("tA" | "tB") as r -> Hashtbl.replace seen (Option.get r) ()
           | Some other -> Alcotest.failf "foreign request id %S in trace" other
           | None -> ())
       | Error _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove trace;
  Alcotest.(check bool)
    "both requests left tagged spans" true
    (Hashtbl.mem seen "tA" && Hashtbl.mem seen "tB")

let () =
  Alcotest.run "serve"
    [
      ("wire",
       [
         Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
         Alcotest.test_case "request decode" `Quick test_request_decode;
         Alcotest.test_case "framing" `Quick test_framing;
       ]);
      ("admission",
       [ Alcotest.test_case "budget and drain rejections" `Quick test_admission ]);
      ("drain",
       [
         Alcotest.test_case "graceful drain resumes byte-identical" `Slow
           test_drain_resume;
       ]);
      ("parity",
       [
         Alcotest.test_case "serve matches one-shot verdicts" `Slow test_parity;
       ]);
      ("concurrency",
       [
         Alcotest.test_case "injected sessions are isolated" `Slow
           test_injected_isolation;
         Alcotest.test_case "trace attribution stays per-request" `Slow
           test_trace_integrity;
       ]);
    ]
