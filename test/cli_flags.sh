#!/usr/bin/env bash
# Numeric-flag validation of the atpg CLI: out-of-range and garbage
# values must be rejected with a friendly diagnostic and a nonzero exit,
# never a crash or a silently-clamped run.
# Driven from dune (see the rule in test/dune); $1 is the atpg executable.
set -u

atpg="$1"
fails=0

# A bad flag must exit nonzero AND say something about the offending
# value on stderr (cmdliner usage errors exit 124 for bad option values).
reject() {
  local label="$1"
  shift
  local err
  err=$("$atpg" "$@" 2>&1 >/dev/null)
  local got=$?
  if [ "$got" -eq 0 ]; then
    echo "FAIL $label: accepted (exit 0)" >&2
    fails=$((fails + 1))
  elif [ -z "$err" ]; then
    echo "FAIL $label: rejected silently (exit $got, no diagnostic)" >&2
    fails=$((fails + 1))
  else
    echo "ok   $label (exit $got)"
  fi
}

# A good invocation must exit zero; stderr is grepped for (or required
# to be free of) a marker — used for the dense-backend guard note.
expect_note() {
  local label="$1" want="$2" pattern="$3"
  shift 3
  local err
  err=$("$atpg" "$@" 2>&1 >/dev/null)
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL $label: exited $got: $err" >&2
    fails=$((fails + 1))
  elif [ "$want" = yes ] && ! grep -q "$pattern" <<<"$err"; then
    echo "FAIL $label: expected note matching '$pattern', got: $err" >&2
    fails=$((fails + 1))
  elif [ "$want" = no ] && grep -q "$pattern" <<<"$err"; then
    echo "FAIL $label: unexpected note: $err" >&2
    fails=$((fails + 1))
  else
    echo "ok   $label"
  fi
}

reject "--jobs -1"           generate --fast --take 1 --jobs -1
reject "--jobs garbage"      generate --fast --take 1 --jobs banana
reject "--max-retries -1"    generate --fast --take 1 --max-retries -1
reject "--max-retries junk"  generate --fast --take 1 --max-retries 1.5
reject "--campaigns 0"       fuzz --campaigns 0
reject "--campaigns -3"      fuzz --campaigns -3
reject "--campaigns garbage" fuzz --campaigns many
reject "--seed garbage"      fuzz --campaigns 1 --seed pi
reject "--inject-seed junk"  generate --fast --take 1 --inject execute.observables --inject-seed x
reject "bad --inject spec"   generate --fast --take 1 --inject "no.such.point=2"
reject "unknown fuzz check"  fuzz --campaigns 1 --check no-such-invariant
reject "--backend garbage"   op --macro iv --backend banana
reject "parametric macro 0"  op --macro skc0
reject "parametric macro big" op --macro rc9999
reject "sparse on legacy"    generate --fast --take 1 --legacy --backend sparse

# The dense-path guard: a 100+-node macro on the dense backend prints a
# note suggesting --backend sparse; the sparse backend stays quiet, and
# small macros never trigger it.
expect_note "dense guard fires on skc32"  yes "consider --backend sparse" op --macro skc32 --backend dense
expect_note "no guard on sparse backend"  no  "consider --backend sparse" op --macro skc32 --backend sparse
expect_note "no guard on small macros"    no  "consider --backend sparse" op --macro iv --backend dense

exit "$fails"
