(* Command-line front end for the analog ATPG reproduction. *)

open Cmdliner
open Testgen

let macro_of_name = Macros.Registry.find

let macro_arg =
  let doc =
    "Target macro: $(b,iv) (the paper's IV-converter), $(b,ota), $(b,sk), \
     or a parametric family — $(b,rc)$(i,N) (RC ladder), $(b,skc)$(i,N) \
     (Sallen-Key filter chain), $(b,otac)$(i,N) (OTA cascade)."
  in
  Arg.(value & opt string "iv" & info [ "macro" ] ~docv:"NAME" ~doc)

let backend_arg =
  let doc =
    "Linear-algebra backend: $(b,dense) factors the full MNA matrix, \
     $(b,sparse) compiles the stamp pattern once and factors in \
     compressed form. Detect verdicts and session bytes are \
     bit-identical across backends."
  in
  Arg.(
    value
    & opt
        (enum [ ("dense", Circuit.Mna.Dense); ("sparse", Circuit.Mna.Sparse) ])
        Circuit.Mna.Dense
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let warn_dense_backend ~backend nl =
  match Circuit.Mna.dense_guard_note ~backend nl with
  | Some note -> Printf.eprintf "atpg: note: %s\n%!" note
  | None -> ()

let fast_arg =
  let doc = "Use the fast execution profile (coarser THD windows)." in
  Arg.(value & flag & info [ "fast" ] ~doc)

let take_arg =
  let doc = "Only process the first $(docv) dictionary faults." in
  Arg.(value & opt (some int) None & info [ "take" ] ~docv:"N" ~doc)

let profile_of fast =
  if fast then Execute.fast_profile else Execute.default_profile

let with_macro name f =
  match macro_of_name name with
  | Error e ->
      prerr_endline e;
      1
  | Ok macro -> f macro

let fault_of_dictionary macro fid =
  let dict = Macros.Macro.dictionary macro in
  match Faults.Dictionary.find dict fid with
  | Some entry -> Ok entry
  | None ->
      Error
        (Printf.sprintf "unknown fault %S; use `atpg faults` to list ids" fid)

(* -- netlist ----------------------------------------------------------- *)

let netlist_cmd =
  let run macro_name fault_id impact =
    with_macro macro_name (fun macro ->
        let nl = Macros.Macro.nominal_netlist macro in
        match fault_id with
        | None ->
            print_string (Circuit.Netlist.to_spice nl);
            0
        | Some fid -> begin
            match fault_of_dictionary macro fid with
            | Error e ->
                prerr_endline e;
                1
            | Ok entry ->
                let fault =
                  match impact with
                  | None -> entry.Faults.Dictionary.fault
                  | Some r ->
                      Faults.Fault.with_impact entry.Faults.Dictionary.fault r
                in
                print_string
                  (Circuit.Netlist.to_spice (Faults.Inject.apply nl fault));
                0
          end)
  in
  let fault_arg =
    let doc = "Inject the fault with this id before printing." in
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"ID" ~doc)
  in
  let impact_arg =
    let doc = "Override the fault's model resistance (ohms)." in
    Arg.(value & opt (some float) None & info [ "impact" ] ~docv:"OHMS" ~doc)
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Print the macro netlist (optionally faulty).")
    Term.(const run $ macro_arg $ fault_arg $ impact_arg)

(* -- op ---------------------------------------------------------------- *)

let op_cmd =
  let run macro_name backend =
    with_macro macro_name (fun macro ->
        let nl = Macros.Macro.nominal_netlist macro in
        warn_dense_backend ~backend nl;
        let sys = Circuit.Mna.build ~backend nl in
        let report = Circuit.Dc.solve sys ~time:`Dc in
        let x = report.Circuit.Dc.solution in
        Printf.printf
          "operating point of %s (newton: %d iterations, %d gmin steps)\n\n"
          macro.Macros.Macro.macro_name report.Circuit.Dc.newton_iterations
          report.Circuit.Dc.gmin_steps;
        List.iter
          (fun n ->
            Printf.printf "  V(%-8s) = %9.5f V\n" n (Circuit.Mna.voltage sys x n))
          (Circuit.Netlist.nodes nl);
        print_newline ();
        List.iter
          (fun (name, op) ->
            Printf.printf "  %-6s ids = %10.3e A  (%s)\n" name
              op.Circuit.Mos_model.ids
              (match op.Circuit.Mos_model.region with
              | `Cutoff -> "cutoff"
              | `Triode -> "triode"
              | `Saturation -> "saturation"))
          (Circuit.Mna.mosfet_operating_points sys ~x);
        0)
  in
  Cmd.v
    (Cmd.info "op" ~doc:"Solve and print the macro's DC operating point.")
    Term.(const run $ macro_arg $ backend_arg)

(* -- faults ------------------------------------------------------------ *)

let faults_cmd =
  let run macro_name =
    with_macro macro_name (fun macro ->
        let dict = Macros.Macro.dictionary macro in
        Format.printf "%a@." Faults.Dictionary.pp_summary dict;
        List.iter
          (fun e ->
            Printf.printf "  %-24s %s\n" e.Faults.Dictionary.fault_id
              (Faults.Fault.describe e.Faults.Dictionary.fault))
          (Faults.Dictionary.entries dict);
        0)
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"List the macro's exhaustive fault dictionary.")
    Term.(const run $ macro_arg)

(* -- simulate ----------------------------------------------------------- *)

let simulate_cmd =
  let run file observe =
    match Circuit.Spice_parser.parse_file file with
    | Error e ->
        Printf.eprintf "%s:%d: %s\n" file e.Circuit.Spice_parser.line
          e.Circuit.Spice_parser.message;
        1
    | Ok nl -> begin
        match Circuit.Mna.build nl with
        | exception Invalid_argument msg ->
            Printf.eprintf "%s: %s\n" file msg;
            1
        | sys -> begin
            match Circuit.Dc.solve sys ~time:`Dc with
            | exception Circuit.Dc.No_convergence msg ->
                Printf.eprintf "%s\n" msg;
                1
            | report ->
                let x = report.Circuit.Dc.solution in
                Printf.printf "%s: DC operating point (%d newton iterations)\n"
                  (Circuit.Netlist.title nl)
                  report.Circuit.Dc.newton_iterations;
                let nodes =
                  match observe with
                  | [] -> Circuit.Netlist.nodes nl
                  | ns -> ns
                in
                List.iter
                  (fun n ->
                    match Circuit.Mna.voltage sys x n with
                    | v -> Printf.printf "  V(%-8s) = %9.5f V\n" n v
                    | exception Not_found ->
                        Printf.printf "  V(%-8s) = <unknown node>\n" n)
                  nodes;
                0
          end
      end
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DECK" ~doc:"SPICE-style netlist file.")
  in
  let observe_arg =
    Arg.(
      value & opt_all string []
      & info [ "observe" ] ~docv:"NODE" ~doc:"Only print these nodes.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Parse a SPICE-style deck and print its DC operating point.")
    Term.(const run $ file_arg $ observe_arg)

(* -- sweep -------------------------------------------------------------- *)

let sweep_cmd =
  let run macro_name lo hi points =
    with_macro macro_name (fun macro ->
        let nl = Macros.Macro.nominal_netlist macro in
        let source = macro.Macros.Macro.stimulus_source in
        let observe = macro.Macros.Macro.observe_node in
        let sweep_values = Circuit.Sweep.linspace ~lo ~hi ~points in
        match
          Circuit.Sweep.dc_transfer nl ~source ~sweep_values
            ~observe:[ observe ]
        with
        | exception Circuit.Dc.No_convergence msg ->
            prerr_endline msg;
            1
        | result ->
            let values = Circuit.Sweep.trace result observe in
            Printf.printf "DC transfer of %s: %s swept %s -> V(%s)\n\n"
              macro.Macros.Macro.macro_name source
              (Printf.sprintf "[%s, %s]" (Circuit.Units.format_eng lo)
                 (Circuit.Units.format_eng hi))
              observe;
            print_string
              (Report.Heatmap.render_1d
                 ~x_axis:(source, sweep_values)
                 ~values ~height:14);
            let mid = (lo +. hi) /. 2. in
            Printf.printf "slope at %s: %.4g\n" (Circuit.Units.format_eng mid)
              (Circuit.Sweep.slope_at result ~node:observe ~at:mid);
            0)
  in
  let lo_arg =
    Arg.(
      value & opt float (-50e-6)
      & info [ "from" ] ~docv:"VAL" ~doc:"Sweep start value.")
  in
  let hi_arg =
    Arg.(
      value & opt float 50e-6
      & info [ "to" ] ~docv:"VAL" ~doc:"Sweep end value.")
  in
  let points_arg =
    Arg.(
      value & opt int 41 & info [ "points" ] ~docv:"N" ~doc:"Grid points.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"DC-sweep the macro's stimulus and plot the transfer curve.")
    Term.(const run $ macro_arg $ lo_arg $ hi_arg $ points_arg)

(* -- noise -------------------------------------------------------------- *)

let noise_cmd =
  let run macro_name lo hi points =
    with_macro macro_name (fun macro ->
        let nl = Macros.Macro.nominal_netlist macro in
        let sys = Circuit.Mna.build nl in
        let op = Circuit.Dc.operating_point sys ~time:`Dc in
        let freqs = Circuit.Ac.log_space ~lo ~hi ~points in
        let points_list =
          Circuit.Noise.output_noise sys ~op
            ~observe:macro.Macros.Macro.observe_node ~freqs
        in
        Printf.printf "output noise of %s at V(%s), %s .. %s\n\n"
          macro.Macros.Macro.macro_name macro.Macros.Macro.observe_node
          (Circuit.Units.format_eng ~unit_symbol:"Hz" lo)
          (Circuit.Units.format_eng ~unit_symbol:"Hz" hi);
        List.iter
          (fun p ->
            let top =
              match p.Circuit.Noise.contributions with
              | c :: _ ->
                  Printf.sprintf "  (dominant: %s, %.0f%%)"
                    c.Circuit.Noise.noise_source
                    (100. *. c.Circuit.Noise.psd
                    /. Float.max 1e-300 p.Circuit.Noise.total_psd)
              | [] -> ""
            in
            Printf.printf "  %10sHz  %.3e V^2/Hz  (%.2f nV/rtHz)%s\n"
              (Circuit.Units.format_eng p.Circuit.Noise.noise_freq_hz)
              p.Circuit.Noise.total_psd
              (1e9 *. sqrt p.Circuit.Noise.total_psd)
              top)
          points_list;
        Printf.printf "\nintegrated over the band: %.3f uV rms\n"
          (1e6 *. Circuit.Noise.integrated_rms points_list);
        0)
  in
  let lo_arg =
    Arg.(
      value & opt float 10.
      & info [ "from" ] ~docv:"HZ" ~doc:"Band start frequency.")
  in
  let hi_arg =
    Arg.(
      value & opt float 100e6
      & info [ "to" ] ~docv:"HZ" ~doc:"Band end frequency.")
  in
  let points_arg =
    Arg.(
      value & opt int 25
      & info [ "points" ] ~docv:"N" ~doc:"Log-spaced grid points.")
  in
  Cmd.v
    (Cmd.info "noise"
       ~doc:"Output-referred noise analysis of the macro (adjoint method).")
    Term.(const run $ macro_arg $ lo_arg $ hi_arg $ points_arg)

(* -- context-backed commands ------------------------------------------ *)

let iv_context ?(legacy = false) ?(continuation = false) ?(batching = true)
    ?(backend = Circuit.Mna.Dense) ~fast () =
  prerr_endline "calibrating tolerance boxes...";
  Experiments.Setup.iv ~profile:(profile_of fast)
    ~mode:(if legacy then `Legacy else `Compiled)
    ~continuation ~batching ~backend ()

(* Generation context for any --macro: the IV-converter gets the paper's
   calibrated setup, every other macro the deterministic probe context.
   Identical construction to Serve.Server's context cache, so the serve
   and one-shot paths pose bit-identical problems (the basis of the
   bench's verdict-compatibility gate). *)
let generation_context ?(legacy = false) ?(continuation = false)
    ?(batching = true) ?(backend = Circuit.Mna.Dense) ~macro_name ~fast () =
  match macro_of_name macro_name with
  | Error e -> Error e
  | Ok macro ->
      warn_dense_backend ~backend (Macros.Macro.nominal_netlist macro);
      if String.equal macro_name "iv" then
        Ok (iv_context ~legacy ~continuation ~batching ~backend ~fast (), None)
      else
        Ok
          ( Experiments.Setup.probe ~profile:(profile_of fast)
              ~mode:(if legacy then `Legacy else `Compiled)
              ~continuation ~batching ~backend ~macro (),
            Some Experiments.Setup.probe_options )

let progress ~done_ ~total ~fault_id =
  Printf.eprintf "  [%2d/%2d] %s\n%!" done_ total fault_id

let tps_cmd =
  let run fast fault_id config_id impact grid =
    let ctx = iv_context ~fast () in
    match
      Faults.Dictionary.find ctx.Experiments.Setup.dictionary fault_id
    with
    | None ->
        Printf.eprintf "unknown fault %S\n" fault_id;
        1
    | Some entry ->
        let fault =
          match impact with
          | None -> entry.Faults.Dictionary.fault
          | Some r -> Faults.Fault.with_impact entry.Faults.Dictionary.fault r
        in
        let ev = Experiments.Setup.evaluator ctx config_id in
        let g = Tps.sweep ev fault ~grid () in
        let arg, s = Tps.argmin g in
        (match g.Tps.axes with
        | [ (xn, xs); (yn, ys) ] ->
            print_string
              (Report.Heatmap.render ~x_axis:(xn, xs) ~y_axis:(yn, ys)
                 ~values:(fun xi yi ->
                   g.Tps.values.((xi * Array.length ys) + yi))
                 ())
        | [ (xn, xs) ] ->
            print_string
              (Report.Heatmap.render_1d ~x_axis:(xn, xs) ~values:g.Tps.values
                 ~height:14)
        | _ -> ());
        Printf.printf "argmin: [%s]  S = %.4g  detected fraction %.2f\n"
          (String.concat "; "
             (Array.to_list (Array.map Circuit.Units.format_eng arg)))
          s (Tps.detection_fraction g);
        0
  in
  let fault_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "fault" ] ~docv:"ID" ~doc:"Fault to sweep.")
  in
  let config_arg =
    Arg.(
      value & opt int 3
      & info [ "config" ] ~docv:"N" ~doc:"Test configuration id (1..5).")
  in
  let impact_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "impact" ] ~docv:"OHMS" ~doc:"Override the model resistance.")
  in
  let grid_arg =
    Arg.(value & opt int 9 & info [ "grid" ] ~docv:"N" ~doc:"Grid per axis.")
  in
  Cmd.v
    (Cmd.info "tps"
       ~doc:"Render a test-parameter sensitivity graph (paper Figs. 2-4).")
    Term.(const run $ fast_arg $ fault_arg $ config_arg $ impact_arg $ grid_arg)

(* -- resilience options ------------------------------------------------ *)

(* Numeric flags are validated at parse time: garbage and out-of-range
   values produce a friendly cmdliner error (usage exit code) instead of
   being silently clamped or crashing mid-run. *)
let bounded_int ~what ~min () =
  let parse s =
    match int_of_string_opt s with
    | None ->
        Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" what s))
    | Some v when v < min ->
        Error (`Msg (Printf.sprintf "%s must be >= %d (got %d)" what min v))
    | Some v -> Ok v
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let seed_conv what =
  let parse s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None ->
        Error (`Msg (Printf.sprintf "%s: expected an integer seed, got %S" what s))
  in
  Arg.conv ~docv:"SEED" (parse, fun ppf v -> Format.fprintf ppf "%Ld" v)

let max_retries_arg =
  let doc =
    "Retry-ladder rungs attempted after a failed fault simulation before \
     the fault is quarantined (0 disables retries)."
  in
  Arg.(
    value
    & opt
        (bounded_int ~what:"--max-retries" ~min:0 ())
        (List.length Resilience.default_ladder)
    & info [ "max-retries" ] ~docv:"N" ~doc)

let fail_fast_arg =
  let doc =
    "Abort the run on the first unrecoverable fault instead of \
     quarantining it and continuing."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let resume_arg =
  let doc =
    "Checkpoint file: results are appended after every fault, and an \
     existing (possibly truncated) file is loaded so an interrupted run \
     restarts where it left off."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the generation run: $(docv)=1 runs sequentially \
     (the default), $(docv)=0 uses one worker per available core. Results, \
     reports and checkpoint files are bit-for-bit identical at every job \
     count, so a run checkpointed at one $(docv) can be resumed at another."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"--jobs" ~min:0 ()) 1
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let executor_of jobs =
  let jobs = if jobs <= 0 then Parallel.default_jobs () else jobs in
  if jobs = 1 then Engine.sequential else Parallel.executor ~jobs

let policy_of ~max_retries ~fail_fast =
  {
    Resilience.default_policy with
    Resilience.max_retries = Int.max 0 max_retries;
    fail_fast;
  }

let parse_inject_specs specs =
  List.fold_left
    (fun acc s ->
      match (acc, Numerics.Failpoint.spec_of_string s) with
      | Error e, _ -> Error e
      | Ok _, Error e -> Error e
      | Ok l, Ok spec -> Ok (l @ [ spec ]))
    (Ok []) specs

let inject_arg =
  let doc =
    Printf.sprintf
      "Failure-injection point $(docv) (testing hook), as \
       NAME[=PROB][\\@MAX]: e.g. $(b,dc.no_convergence=0.3\\@5). Known \
       points: %s. Repeatable."
      (String.concat ", " Numerics.Failpoint.known_points)
  in
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SPEC" ~doc)

let inject_seed_arg =
  let doc = "Seed for the failure-injection random streams." in
  Arg.(
    value
    & opt (seed_conv "--inject-seed") 0L
    & info [ "inject-seed" ] ~docv:"SEED" ~doc)

let print_resilience_summary (run : Engine.run) =
  if run.Engine.resumed_count > 0 then
    Printf.eprintf "resumed %d fault(s) from the checkpoint\n"
      run.Engine.resumed_count;
  if run.Engine.recovered_count > 0 then begin
    Printf.eprintf "recovered %d fault(s) via the retry ladder:\n"
      run.Engine.recovered_count;
    List.iter
      (fun (label, n) ->
        if n > 0 && not (String.equal label Resilience.baseline_label) then
          Printf.eprintf "  %-12s %d\n" label n)
      run.Engine.rung_stats
  end;
  match run.Engine.failed_faults with
  | [] -> ()
  | fs ->
      Printf.eprintf "%d fault(s) quarantined as unrecoverable:\n"
        (List.length fs);
      List.iter (fun d -> Format.eprintf "  %a@." Resilience.pp_diagnosis d) fs

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Save the generation results as a session file.")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Load generation results from a session file instead of \
              regenerating.")

let save_session path results =
  match Session.save ~path results with
  | Ok () ->
      Printf.eprintf "session saved to %s\n" path;
      0
  | Error m ->
      Printf.eprintf "cannot save session: %s\n" m;
      1

(* A session that exists but fails to load is corrupt (exit code 5,
   Engine.exit_corrupt_session); a missing or unreadable file stays a
   plain IO error (exit code 1). *)
let session_error_code path =
  if Sys.file_exists path then Engine.exit_corrupt_session else 1

let run_or_load ?options ?policy ?resume ?executor ctx ~load ~take =
  match load with
  | Some path -> begin
      match Session.load ~path with
      | Error m ->
          Printf.eprintf "cannot load session: %s\n" m;
          Error (session_error_code path)
      | Ok results ->
          Ok (Engine.of_results ~evaluators:ctx.Experiments.Setup.evaluators results)
    end
  | None -> begin
      let ctx =
        match take with
        | Some n -> Experiments.Setup.reduced ctx ~n_faults:n
        | None -> ctx
      in
      let finish run =
        print_resilience_summary run;
        Ok run
      in
      match resume with
      | None ->
          finish
            (Experiments.Runs.engine_run ~progress ?options ?policy ?executor
               ctx)
      | Some path -> begin
          match Session.checkpoint_resume ~path with
          | Error m ->
              Printf.eprintf "cannot resume checkpoint: %s\n" m;
              Error (session_error_code path)
          | Ok (ck, prior) ->
              if prior <> [] then
                Printf.eprintf "checkpoint %s: %d fault(s) already generated\n%!"
                  path (List.length prior);
              finish
                (Fun.protect
                   ~finally:(fun () -> Session.checkpoint_close ck)
                   (fun () ->
                     Experiments.Runs.engine_run ~progress ?options ?policy
                       ?executor ~resume:prior
                       ~checkpoint:(Session.checkpoint_append ck) ctx))
        end
    end

(* -- tracing ----------------------------------------------------------- *)

let trace_arg =
  let doc =
    "Enable observability tracing and write a JSONL trace to $(docv): one \
     span event per line (schema atpg-trace/1), followed by a \
     counter/histogram summary. Aggregate counters are identical at every \
     --jobs count; only elapsed-time fields differ between runs. Off by \
     default, with zero overhead on the simulation hot path."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Obs.enable ~trace:path ();
      Fun.protect ~finally:Obs.shutdown f

(* Save errors keep owning exit code 1; a clean run that left quarantined
   faults reports Engine.exit_quarantined so CI can gate on it. *)
let finish_run ?save (run_result : Engine.run) =
  let save_code =
    match save with
    | Some path -> save_session path run_result.Engine.results
    | None -> 0
  in
  if save_code <> 0 then save_code else Engine.exit_status run_result

let legacy_eval_arg =
  let doc =
    "Evaluate with the legacy rebuild-per-probe simulation path instead \
     of the compiled restamp hot path. Results, reports and checkpoint \
     files are bit-for-bit identical either way; this flag keeps the \
     reference implementation reachable for verifying that claim."
  in
  Arg.(value & flag & info [ "legacy-eval" ] ~doc)

let continuation_arg =
  let doc =
    "Warm-start each fault's impact-ladder solves from the previous \
     impact level (homotopy continuation with rank-1 first steps). \
     Faster, and deterministic across $(b,--jobs); converged results \
     satisfy the same solver tolerances but are not guaranteed \
     bit-identical to the default cold-start path. Incompatible with \
     $(b,--legacy-eval)."
  in
  Arg.(value & flag & info [ "continuation" ] ~doc)

let no_batch_arg =
  let doc =
    "Disable config-major batched fault evaluation (one held \
     factorization per fault, the whole probe cross-product solved \
     against it) and force the sequential per-(fault, test) reference \
     path. Results, reports and checkpoint files are bit-for-bit \
     identical either way; this flag keeps the reference implementation \
     reachable for verifying that claim."
  in
  Arg.(value & flag & info [ "no-batch" ] ~doc)

let grad_arg =
  let doc =
    "Optimize candidate tests by projected gradient descent on the \
     analytic adjoint sensitivity (one extra triangular solve per \
     operating point) instead of finite-difference bracketing — \
     typically 5-10x fewer probe solves per candidate. Configurations \
     without an analytic gradient fall back to the bracketing path \
     automatically; detect verdicts are cross-checked against the \
     finite-difference oracle by $(b,bench --adjoint). Incompatible \
     with $(b,--legacy-eval)."
  in
  Arg.(value & flag & info [ "grad" ] ~doc)

let generate_cmd =
  let run fast macro fault_id take save max_retries fail_fast resume inject
      inject_seed jobs legacy continuation no_batch grad backend trace =
    if legacy && continuation then begin
      prerr_endline "atpg: --continuation requires the compiled path";
      exit 2
    end;
    if legacy && grad then begin
      prerr_endline "atpg: --grad requires the compiled path";
      exit 2
    end;
    if legacy && backend = Circuit.Mna.Sparse then begin
      prerr_endline "atpg: --backend sparse requires the compiled path";
      exit 2
    end;
    match parse_inject_specs inject with
    | Error e ->
        prerr_endline e;
        1
    | Ok specs ->
        with_trace trace (fun () ->
            (* build the context first: injection targets the resilient
               generation run, not the tolerance-box setup *)
            match
              generation_context ~legacy ~continuation
                ~batching:(not no_batch) ~backend ~macro_name:macro ~fast ()
            with
            | Error e ->
                prerr_endline e;
                1
            | Ok (ctx, ctx_options) ->
                Numerics.Failpoint.configure ~seed:inject_seed specs;
                Fun.protect ~finally:Numerics.Failpoint.disable (fun () ->
                    let policy = policy_of ~max_retries ~fail_fast in
                    match fault_id with
                    | Some fid ->
                        print_string (Experiments.Runs.fig6 ~fault_id:fid ctx);
                        0
                    | None -> begin
                        let options =
                          match (ctx_options, grad) with
                          | None, false -> None
                          | Some o, false -> Some o
                          | None, true ->
                              Some
                                {
                                  Generate.default_options with
                                  use_gradient = true;
                                }
                          | Some o, true ->
                              Some { o with Generate.use_gradient = true }
                        in
                        match
                          run_or_load ?options ~policy ?resume
                            ~executor:(executor_of jobs) ctx ~load:None ~take
                        with
                        | Error code -> code
                        | Ok run_result ->
                            print_string (Experiments.Runs.tab2 ctx run_result);
                            finish_run ?save run_result
                        | exception Engine.Fault_failure d ->
                            Format.eprintf "fail-fast: %a@."
                              Resilience.pp_diagnosis d;
                            Engine.exit_fail_fast
                      end))
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"ID"
          ~doc:"Generate (with full trace) for a single fault.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Run fault-specific test generation (paper sec. 3).")
    Term.(
      const run $ fast_arg $ macro_arg $ fault_arg $ take_arg $ save_arg
      $ max_retries_arg $ fail_fast_arg $ resume_arg $ inject_arg
      $ inject_seed_arg $ jobs_arg $ legacy_eval_arg $ continuation_arg
      $ no_batch_arg $ grad_arg $ backend_arg $ trace_arg)

let compact_cmd =
  let run fast macro backend no_batch take delta load save max_retries
      fail_fast resume jobs trace =
    with_trace trace (fun () ->
        match
          generation_context ~batching:(not no_batch) ~backend
            ~macro_name:macro ~fast ()
        with
        | Error e ->
            prerr_endline e;
            1
        | Ok (ctx, options) -> (
            let policy = policy_of ~max_retries ~fail_fast in
            match
              run_or_load ?options ~policy ?resume
                ~executor:(executor_of jobs) ctx ~load ~take
            with
            | Error code -> code
            | Ok run_result ->
                print_string (Experiments.Runs.tab2 ctx run_result);
                print_newline ();
                print_string (Experiments.Runs.tab4 ~delta ctx run_result);
                finish_run ?save run_result
            | exception Engine.Fault_failure d ->
                Format.eprintf "fail-fast: %a@." Resilience.pp_diagnosis d;
                Engine.exit_fail_fast))
  in
  let delta_arg =
    Arg.(
      value & opt float 0.1
      & info [ "delta" ] ~docv:"D"
          ~doc:"Acceptable sensitivity loss for collapsing (sec. 4.1).")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Generate (or --load) and collapse the compact test set \
             (paper sec. 4).")
    Term.(
      const run $ fast_arg $ macro_arg $ backend_arg $ no_batch_arg $ take_arg
      $ delta_arg $ load_arg $ save_arg $ max_retries_arg $ fail_fast_arg
      $ resume_arg $ jobs_arg $ trace_arg)

let baseline_cmd =
  let run fast macro backend no_batch take jobs trace =
    with_trace trace (fun () ->
        match
          generation_context ~batching:(not no_batch) ~backend
            ~macro_name:macro ~fast ()
        with
        | Error e ->
            prerr_endline e;
            1
        | Ok (ctx, options) ->
            let ctx =
              match take with
              | Some n -> Experiments.Setup.reduced ctx ~n_faults:n
              | None -> ctx
            in
            let run_result =
              Experiments.Runs.engine_run ~progress ?options
                ~executor:(executor_of jobs) ctx
            in
            print_string (Experiments.Runs.xbase ctx run_result);
            Engine.exit_status run_result)
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Compare optimized generation against fixed-seed selection.")
    Term.(
      const run $ fast_arg $ macro_arg $ backend_arg $ no_batch_arg $ take_arg
      $ jobs_arg $ trace_arg)

(* -- profile ------------------------------------------------------------ *)

let render_profile (run_result : Engine.run) =
  let b = Buffer.create 2048 in
  let section title body =
    Buffer.add_string b title;
    Buffer.add_char b '\n';
    Buffer.add_string b body;
    Buffer.add_char b '\n'
  in
  (* per-phase wall clock *)
  let spans = Obs.span_stats () in
  let total_secs =
    match
      List.find_opt (fun s -> String.equal s.Obs.span_name "engine.run") spans
    with
    | Some s -> s.Obs.span_seconds
    | None -> run_result.Engine.wall_seconds
  in
  section "Per-phase wall clock"
    (Report.Table.of_rows
       ~headers:
         [
           ("span", Report.Table.Left);
           ("count", Report.Table.Right);
           ("seconds", Report.Table.Right);
           ("% of run", Report.Table.Right);
         ]
       (List.map
          (fun s ->
            [
              s.Obs.span_name;
              string_of_int s.Obs.span_count;
              Printf.sprintf "%.3f" s.Obs.span_seconds;
              (if total_secs > 0. then
                 Printf.sprintf "%.1f"
                   (100. *. s.Obs.span_seconds /. total_secs)
               else "-");
            ])
          spans));
  (* top faults by evaluations *)
  let top_faults =
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take 10 (Obs.fault_evals ())
  in
  if top_faults <> [] then
    section "Top faults by evaluations"
      (Report.Table.of_rows
         ~headers:[ ("fault", Report.Table.Left); ("evals", Report.Table.Right) ]
         (List.map (fun (fid, n) -> [ fid; string_of_int n ]) top_faults));
  (* counters, with cache hit rates *)
  let counters = Obs.counters () in
  let value name =
    match List.assoc_opt name counters with Some v -> v | None -> 0
  in
  let hit_rate hits misses =
    let total = hits + misses in
    if total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int total)
  in
  section "Cache hit rates"
    (Report.Table.of_rows
       ~headers:
         [
           ("cache", Report.Table.Left);
           ("hits", Report.Table.Right);
           ("misses", Report.Table.Right);
           ("hit rate", Report.Table.Right);
         ]
       [
         [
           "nominal observables";
           string_of_int (value "evaluator.nominal_cache.hits");
           string_of_int (value "evaluator.nominal_cache.misses");
           hit_rate
             (value "evaluator.nominal_cache.hits")
             (value "evaluator.nominal_cache.misses");
         ];
         [
           "compiled plans";
           string_of_int (value "evaluator.plan_cache.hits");
           string_of_int (value "evaluator.plan_cache.misses");
           hit_rate
             (value "evaluator.plan_cache.hits")
             (value "evaluator.plan_cache.misses");
         ];
       ]);
  (* config-major batched evaluation: settled vs fallback pairs, and the
     held-factorization panels the settled pairs shared *)
  let batched = value "evaluator.batch.faults_batched" in
  let fallback = value "evaluator.batch.fallback_seq" in
  if batched + fallback > 0 then
    section "Batched evaluation"
      (Report.Table.of_rows
         ~headers:
           [ ("metric", Report.Table.Left); ("value", Report.Table.Right) ]
         [
           [ "pairs batched"; string_of_int batched ];
           [ "pairs fallen back"; string_of_int fallback ];
           [ "factorization panels"; string_of_int (value "evaluator.batch.panels") ];
           [
             "batched share";
             hit_rate batched fallback;
           ];
         ]);
  section "Counters"
    (Report.Table.of_rows
       ~headers:[ ("counter", Report.Table.Left); ("value", Report.Table.Right) ]
       (List.map (fun (name, v) -> [ name; string_of_int v ]) counters));
  (* histograms (e.g. Newton iterations per DC solve) *)
  List.iter
    (fun (name, rows) ->
      section
        (Printf.sprintf "Histogram: %s" name)
        (Report.Table.of_rows
           ~headers:
             [ ("bucket", Report.Table.Left); ("count", Report.Table.Right) ]
           (List.map (fun (label, n) -> [ label; string_of_int n ]) rows)))
    (Obs.histograms ());
  Buffer.contents b

let profile_cmd =
  let run fast take jobs trace =
    Obs.enable ?trace ();
    Fun.protect ~finally:Obs.shutdown (fun () ->
        let ctx = iv_context ~fast () in
        let ctx =
          match take with
          | Some n -> Experiments.Setup.reduced ctx ~n_faults:n
          | None -> ctx
        in
        let run_result =
          Experiments.Runs.engine_run ~progress ~executor:(executor_of jobs)
            ctx
        in
        print_string (render_profile run_result);
        print_resilience_summary run_result;
        Engine.exit_status run_result)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run generation with tracing enabled and render the aggregate \
          profile: per-phase wall clock, top faults by evaluations, cache \
          hit rates and solver counters. $(b,--trace) additionally writes \
          the JSONL trace.")
    Term.(const run $ fast_arg $ take_arg $ jobs_arg $ trace_arg)

let experiment_cmd =
  let run fast which =
    let ctx = iv_context ~fast () in
    let static_reports =
      [
        ("fig1", fun () -> Experiments.Runs.fig1 ());
        ("tab1", fun () -> Experiments.Runs.tab1 ());
        ("fig234", fun () -> Experiments.Runs.fig234 ctx);
        ("fig5", fun () -> Experiments.Runs.fig5 ctx);
        ("fig6", fun () -> Experiments.Runs.fig6 ctx);
        ("fig7", fun () -> Experiments.Runs.fig7 ());
      ]
    in
    match which with
    | "all" ->
        List.iter
          (fun (_, report) ->
            print_string report;
            print_newline ())
          (Experiments.Runs.all_reports ~progress ctx);
        0
    | id -> begin
        match List.assoc_opt id static_reports with
        | Some f ->
            print_string (f ());
            0
        | None ->
            if id = "xac" then begin
              print_string (Experiments.Extensions.xac_report ());
              0
            end
            else if
              List.mem id [ "tab2"; "fig8"; "tab3"; "tab4"; "xbase"; "xifa"; "xeq" ]
            then begin
              let run_result = Experiments.Runs.engine_run ~progress ctx in
              let report =
                match id with
                | "tab2" -> Experiments.Runs.tab2 ctx run_result
                | "fig8" -> Experiments.Runs.fig8 ctx run_result
                | "tab3" -> Experiments.Runs.tab3 ctx run_result
                | "tab4" -> Experiments.Runs.tab4 ctx run_result
                | "xifa" ->
                    Experiments.Extensions.xifa_report ctx run_result
                      (Experiments.Runs.compact_run ctx run_result)
                | "xeq" -> Experiments.Extensions.xeq_report ctx run_result
                | _ -> Experiments.Runs.xbase ctx run_result
              in
              print_string report;
              0
            end
            else begin
              Printf.eprintf
                "unknown experiment %S (fig1 tab1 fig234 fig5 fig6 fig7 tab2 \
                 fig8 tab3 tab4 xbase xac xifa xeq all)\n"
                id;
              1
            end
      end
  in
  let which_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id or $(b,all).")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Reproduce a specific paper table/figure (or all of them).")
    Term.(const run $ fast_arg $ which_arg)

(* -- fuzz --------------------------------------------------------------- *)

let fuzz_cmd =
  let run campaigns seed jobs inject checks self_test json_out =
    match parse_inject_specs inject with
    | Error e ->
        prerr_endline e;
        1
    | Ok specs ->
        let options =
          {
            Fuzz.Campaign.campaigns;
            seed;
            jobs;
            inject = (if specs = [] then Fuzz.Campaign.default_inject else specs);
            checks = (if checks = [] then None else Some checks);
            self_test;
          }
        in
        let progress ~campaign ~total =
          Printf.eprintf "\rcampaign %d/%d%!" (campaign + 1) total
        in
        let note n = Printf.eprintf "\ratpg: note: %s\n%!" n in
        let result = Fuzz.Campaign.run ~progress ~note options in
        prerr_newline ();
        (match result with
        | Error m ->
            prerr_endline m;
            1
        | Ok report -> (
            Format.printf "%a" Fuzz.Campaign.pp_report report;
            (match json_out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc (Fuzz.Campaign.report_json report);
                close_out oc;
                Printf.eprintf "report written to %s\n" path);
            match self_test with
            | false -> if Fuzz.Campaign.clean report then 0 else 1
            | true ->
                (* self-test succeeds iff the planted violation was found
                   and shrunk to the minimal scenario that trips it *)
                let expected =
                  { Fuzz.Scenario.minimal with Fuzz.Scenario.fault_count = 2 }
                in
                let found =
                  List.exists
                    (fun v ->
                      String.equal v.Fuzz.Campaign.v_invariant "self-test"
                      && v.Fuzz.Campaign.v_shrunk = expected)
                    report.Fuzz.Campaign.r_violations
                in
                let others =
                  List.exists
                    (fun v ->
                      not (String.equal v.Fuzz.Campaign.v_invariant "self-test"))
                    report.Fuzz.Campaign.r_violations
                in
                if found && not others then begin
                  prerr_endline
                    "self-test: planted violation found and shrunk to the \
                     minimal scenario";
                  0
                end
                else begin
                  prerr_endline
                    (if found then "self-test: unexpected extra violations"
                     else
                       "self-test: planted violation was NOT found and shrunk");
                  1
                end))
  in
  let campaigns_arg =
    let doc = "Number of fuzz campaigns (randomized scenarios) to run." in
    Arg.(
      value
      & opt (bounded_int ~what:"--campaigns" ~min:1 ()) 20
      & info [ "campaigns" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Campaign seed: the whole report is a pure function of the seed and \
       the other options (byte-deterministic, at every $(b,--jobs) value)."
    in
    Arg.(value & opt (seed_conv "--seed") 0L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let checks_arg =
    let doc =
      Printf.sprintf "Run only the named invariant (repeatable). Known: %s."
        (String.concat ", " Fuzz.Invariants.names)
    in
    Arg.(value & opt_all string [] & info [ "check" ] ~docv:"NAME" ~doc)
  in
  let self_test_arg =
    let doc =
      "Also run a deliberately planted invariant violation and verify the \
       harness finds it and shrinks it to the minimal scenario (exit 0 \
       exactly when it does)."
    in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let json_arg =
    let doc = "Write the campaign report as deterministic JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based scenario fuzzing: random macro/fault/configuration \
          scenarios checked against engine invariants, with failure \
          injection, crash-safety campaigns and counterexample shrinking.")
    Term.(
      const run $ campaigns_arg $ seed_arg $ jobs_arg $ inject_arg $ checks_arg
      $ self_test_arg $ json_arg)

(* -- serve / client ----------------------------------------------------- *)

let socket_arg =
  let doc = "Unix domain socket path of the daemon." in
  Arg.(
    value
    & opt string Serve.Server.default_options.Serve.Server.socket
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run socket budget spool trace =
    with_trace trace (fun () ->
        match Serve.Server.start { Serve.Server.socket; budget; spool } with
        | Error m ->
            prerr_endline m;
            1
        | Ok server ->
            Serve.Server.install_sigterm server;
            Printf.eprintf
              "atpg: serving %s on %s (budget %d, spool %s); SIGTERM drains\n%!"
              Serve.Protocol.schema socket budget spool;
            Serve.Server.wait server;
            let s = Serve.Server.stats server in
            Printf.eprintf
              "atpg: drained after %d accepted / %d rejected request(s)\n%!"
              s.Serve.Server.st_accepted s.Serve.Server.st_rejected;
            0)
  in
  let budget_arg =
    let doc =
      "Admission budget: work requests admitted concurrently; requests \
       beyond it are rejected immediately (HTTP-style 429 on the wire, \
       client exit code 6)."
    in
    Arg.(
      value
      & opt
          (bounded_int ~what:"--budget" ~min:1 ())
          Serve.Server.default_options.Serve.Server.budget
      & info [ "budget" ] ~docv:"N" ~doc)
  in
  let spool_arg =
    let doc = "Directory for named session checkpoint files." in
    Arg.(
      value
      & opt string Serve.Server.default_options.Serve.Server.spool
      & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the ATPG daemon: concurrent generation sessions over a Unix \
          domain socket (JSONL protocol atpg-serve/1).")
    Term.(const run $ socket_arg $ budget_arg $ spool_arg $ trace_arg)

let client_cmd =
  let run socket op req_id macro backend fast take jobs delta inject
      inject_seed session linger_ms =
    let maybe name v f = match v with Some x -> [ (name, f x) ] | None -> [] in
    let request =
      Serve.Jsonl.Obj
        ([
           ("op", Serve.Jsonl.Str op);
           ("macro", Serve.Jsonl.Str macro);
           ("backend",
            Serve.Jsonl.Str (Serve.Protocol.backend_to_string backend));
           ("fast", Serve.Jsonl.Bool fast);
           ("jobs", Serve.Jsonl.Num (float_of_int jobs));
           ("delta", Serve.Jsonl.Num delta);
           ("inject_seed", Serve.Jsonl.Num (Int64.to_float inject_seed));
         ]
        @ maybe "take" take (fun n -> Serve.Jsonl.Num (float_of_int n))
        @ maybe "session" session (fun s -> Serve.Jsonl.Str s)
        @ (if linger_ms > 0 then
             [ ("linger_ms", Serve.Jsonl.Num (float_of_int linger_ms)) ]
           else [])
        @
        match inject with
        | [] -> []
        | specs ->
            [
              ("inject",
               Serve.Jsonl.List
                 (List.map (fun s -> Serve.Jsonl.Str s) specs));
            ])
    in
    match
      Serve.Client.roundtrip
        ~on_event:(fun e -> print_endline (Serve.Jsonl.to_string e))
        ~socket ~req:req_id request
    with
    | Error m ->
        prerr_endline m;
        1
    | Ok reply -> reply.Serve.Client.status
  in
  let op_arg =
    let doc =
      "Operation: $(b,ping), $(b,stats), $(b,profile), $(b,op), \
       $(b,generate), $(b,compact) or $(b,baseline)."
    in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"OP" ~doc)
  in
  let req_arg =
    let doc = "Correlation id stamped on every response line." in
    Arg.(value & opt string "cli" & info [ "req" ] ~docv:"ID" ~doc)
  in
  let session_arg =
    let doc =
      "Named server-side session: the run checkpoints into the daemon's \
       spool under this name, a drain interrupts it cleanly (client exit \
       code 7) and resending the same name resumes it."
    in
    Arg.(value & opt (some string) None & info [ "session" ] ~docv:"NAME" ~doc)
  in
  let delta_arg =
    Arg.(
      value & opt float 0.1
      & info [ "delta" ] ~docv:"D"
          ~doc:"Compaction sensitivity-loss budget (compact op).")
  in
  let linger_arg =
    let doc =
      "Hold an admission slot for $(docv) milliseconds on a ping \
       (deterministic budget filling for tests)."
    in
    Arg.(
      value
      & opt (bounded_int ~what:"--linger-ms" ~min:0 ()) 0
      & info [ "linger-ms" ] ~docv:"MS" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running atpg daemon and stream its \
          response events (exit code mirrors the daemon's verdict: 6 \
          rejected, 7 drained).")
    Term.(
      const run $ socket_arg $ op_arg $ req_arg $ macro_arg $ backend_arg
      $ fast_arg $ take_arg $ jobs_arg $ delta_arg $ inject_arg
      $ inject_seed_arg $ session_arg $ linger_arg)

let main_cmd =
  let doc =
    "structural test generation for analog macros (Kaal & Kerkhoff, 1997)"
  in
  Cmd.group
    (Cmd.info "atpg" ~version:"1.0.0" ~doc)
    [
      netlist_cmd;
      op_cmd;
      simulate_cmd;
      sweep_cmd;
      noise_cmd;
      faults_cmd;
      tps_cmd;
      generate_cmd;
      compact_cmd;
      baseline_cmd;
      profile_cmd;
      experiment_cmd;
      fuzz_cmd;
      serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
