(* The production workflow end-to-end: generate once, persist the session,
   then (as a separate consumer would) reload it, compact, schedule the
   tests by likelihood-per-cost, and estimate shipped quality.

   Run with:  dune exec examples/production_flow.exe *)

open Testgen

let () =
  prerr_endline "calibrating tolerance boxes...";
  let ctx =
    Experiments.Setup.create
      ~macro:Macros.Iv_converter.macro
      ~configs:[ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]
      ()
  in
  let dictionary =
    Faults.Dictionary.filter ctx.Experiments.Setup.dictionary (fun e ->
        List.mem e.Faults.Dictionary.fault_id
          [
            "bridge:n1-vout"; "bridge:iin-n1"; "bridge:iin-vout";
            "bridge:nmir-vout"; "pinhole:m1"; "pinhole:m2"; "pinhole:m6";
          ])
  in

  (* 1. generate and persist *)
  let run =
    Engine.run ~evaluators:ctx.Experiments.Setup.evaluators dictionary
  in
  let path = Filename.temp_file "atpg" ".session" in
  (match Session.save ~path run.Engine.results with
  | Ok () -> Printf.printf "session saved to %s\n" path
  | Error m -> failwith m);

  (* 2. a later consumer reloads it -- no regeneration *)
  let results =
    match Session.load ~path with Ok r -> r | Error m -> failwith m
  in
  Printf.printf "session reloaded: %d results\n\n" (List.length results);
  let run = Engine.of_results ~evaluators:ctx.Experiments.Setup.evaluators results in

  (* 3. compact *)
  let compaction =
    Compactor.compact ~delta:0.1 ~evaluators:ctx.Experiments.Setup.evaluators
      dictionary run
  in
  Printf.printf "compacted %d tests onto %d\n"
    compaction.Compactor.original_test_count
    (List.length compaction.Compactor.compact_tests);

  (* 4. weight faults by structural likelihood and order the tests *)
  let nl = Macros.Macro.nominal_netlist ctx.Experiments.Setup.macro in
  let weighted = Faults.Ifa.weigh nl dictionary in
  let weights =
    List.map
      (fun w -> (w.Faults.Ifa.entry.Faults.Dictionary.fault_id, w.Faults.Ifa.weight))
      weighted
  in
  let detections =
    List.map
      (fun (d : Coverage.detection) ->
        (d.Coverage.det_fault_id, d.Coverage.detected_by))
      compaction.Compactor.coverage.Coverage.detections
  in
  let schedule =
    Schedule.order ~cost_model:Schedule.default_cost_model
      ~configs:ctx.Experiments.Setup.configs ~weights ~detections
      compaction.Compactor.coverage.Coverage.tests
  in
  Printf.printf "\nproduction order (best likelihood-per-cost first):\n";
  List.iteri
    (fun i (t : Coverage.test) ->
      Printf.printf "  %d. %s (%.2f%% cumulative weighted coverage)\n" (i + 1)
        t.Coverage.test_label
        (List.nth schedule.Schedule.cumulative_coverage i))
    schedule.Schedule.order;
  Printf.printf "expected tester time to first fail: %.2f ms\n"
    (1e3 *. schedule.Schedule.expected_detection_cost);

  (* 5. estimate shipped quality *)
  let rng = Numerics.Rng.create 99L in
  let fault_free =
    List.map
      (Experiments.Setup.target_of_macro ctx.Experiments.Setup.macro)
      (Macros.Process.monte_carlo rng ~n:40)
  in
  let quality =
    Quality.estimate ~evaluators:ctx.Experiments.Setup.evaluators
      ~tests:compaction.Compactor.coverage.Coverage.tests ~fault_free
      ~dictionary ~weights ()
  in
  print_newline ();
  print_string (Quality.report quality);
  Sys.remove path
